package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lowcomm3d/internal/fleet"
	"lowcomm3d/internal/grid"
	"lowcomm3d/internal/obs"
	"lowcomm3d/internal/sample"
)

// ErrUnavailable is wrapped by client errors after the reconnect budget
// is exhausted without reaching (or re-reaching) the server.
var ErrUnavailable = errors.New("wire: server unavailable")

// ClientOptions configures a Client.
type ClientOptions struct {
	// Addr is the server address ("host:port") for the default dialer.
	Addr string
	// Dial overrides the dialer (chaos tests inject faulty conns here).
	Dial func() (net.Conn, error)

	// KeepAlive is the client's ping interval (default 2s); it proves
	// liveness to the server during long result streams.
	KeepAlive time.Duration
	// IdleTimeout is how long the connection may stay silent before it
	// is presumed half-open (default 3×KeepAlive). The server pings
	// within KeepAlive, so a healthy connection never trips it.
	IdleTimeout time.Duration
	// ProgressTimeout bounds how long a submitted job may go without
	// any job-level frame (chunk, status, done) before the client
	// reconnects and resumes — the defense against a half-open server
	// that still answers pings (default 15s).
	ProgressTimeout time.Duration

	// ReconnectBase/ReconnectMax shape the deterministic exponential
	// backoff between reconnect attempts (defaults 20ms / 1s).
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
	// MaxReconnects bounds connection attempts per Submit before
	// ErrUnavailable (default 8).
	MaxReconnects int
	// MaxRetries bounds overload resubmits per Submit, each honoring
	// the server's RetryAfter hint (default 4). 0 disables retry;
	// negative means "surface the first overload immediately".
	MaxRetries int

	// Trace receives the client's wire.client.* metrics; nil creates a
	// private trace.
	Trace *obs.Trace
}

func (o *ClientOptions) defaults() {
	if o.Dial == nil {
		addr := o.Addr
		o.Dial = func() (net.Conn, error) { return net.DialTimeout("tcp", addr, 5*time.Second) }
	}
	if o.KeepAlive <= 0 {
		o.KeepAlive = 2 * time.Second
	}
	if o.IdleTimeout <= 0 {
		o.IdleTimeout = 3 * o.KeepAlive
	}
	if o.ProgressTimeout <= 0 {
		o.ProgressTimeout = 15 * time.Second
	}
	if o.ReconnectBase <= 0 {
		o.ReconnectBase = 20 * time.Millisecond
	}
	if o.ReconnectMax <= 0 {
		o.ReconnectMax = time.Second
	}
	if o.MaxReconnects == 0 {
		o.MaxReconnects = 8
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 4
	}
}

// Client is a wire-protocol client. One Client carries one session and
// runs one job at a time (Submit serializes); run several Clients for
// concurrency. A Client survives connection loss: Submit transparently
// reconnects with backoff and resumes result streaming from the last
// acked chunk.
type Client struct {
	opt ClientOptions
	tr  *obs.Trace

	mu sync.Mutex // serializes Submit

	cmu     sync.Mutex // guards conn identity (interrupt races Submit)
	conn    net.Conn
	wmu     sync.Mutex // guards frame writes (Submit vs pinger)
	pingEnd chan struct{}
	token   string

	nextJob uint64

	// lastTrace is the server-minted TraceID echoed on the most recent
	// job-scoped frame (chunk, done, status). It names this client's
	// current job in the server's jobtrace collector — correlate wire
	// activity with the server-side lifecycle timeline via /jobs/{id}.
	// Zero until the first echo (or when server tracing is off). Stable
	// across reconnects of the same job: the server keeps the timeline
	// on the session, so a resumed stream echoes the same id.
	lastTrace atomic.Uint64

	cReconnects, cResumes, cRetries  *obs.Counter
	cRestarts, cJobs, cFramesCorrupt *obs.Counter
}

// LastTraceID reports the server-side TraceID of the most recently
// observed job (0 before any job frame arrives, or when the server runs
// without a jobtrace collector).
func (c *Client) LastTraceID() uint64 { return c.lastTrace.Load() }

// NewClient builds a client; no connection is made until the first
// Submit.
func NewClient(opts ClientOptions) *Client {
	opts.defaults()
	c := &Client{opt: opts, tr: opts.Trace, nextJob: 1}
	if c.tr == nil {
		c.tr = obs.New()
	}
	c.cReconnects = c.tr.Counter("wire.client.reconnects")
	c.cResumes = c.tr.Counter("wire.client.resumes")
	c.cRetries = c.tr.Counter("wire.client.retries")
	c.cRestarts = c.tr.Counter("wire.client.restarts")
	c.cJobs = c.tr.Counter("wire.client.jobs_completed")
	c.cFramesCorrupt = c.tr.Counter("wire.client.frames_corrupt")
	return c
}

// Trace returns the client's metrics trace.
func (c *Client) Trace() *obs.Trace { return c.tr }

// Close drops the connection (the server keeps the session for its TTL).
func (c *Client) Close() error {
	c.closeConn()
	return nil
}

func (c *Client) closeConn() {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	if c.pingEnd != nil {
		close(c.pingEnd)
		c.pingEnd = nil
	}
}

// interrupt forces any blocked read on the current connection to return
// immediately (context cancellation path).
func (c *Client) interrupt() {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	if c.conn != nil {
		c.conn.SetReadDeadline(time.Unix(1, 0))
	}
}

// write sends one frame under the write mutex and deadline.
func (c *Client) write(conn net.Conn, t FrameType, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	conn.SetWriteDeadline(time.Now().Add(c.opt.IdleTimeout))
	_, err := conn.Write(EncodeFrame(t, payload))
	return err
}

// connect dials, handshakes, and starts the keepalive pinger. It
// reports whether the server resumed the client's previous session.
func (c *Client) connect(ctx context.Context) (net.Conn, bool, error) {
	conn, err := c.opt.Dial()
	if err != nil {
		return nil, false, err
	}
	conn.SetWriteDeadline(time.Now().Add(c.opt.IdleTimeout))
	if _, err := conn.Write(EncodeFrame(FrameHello, helloMsg{Version: ProtoVersion, Token: c.token}.encode())); err != nil {
		conn.Close()
		return nil, false, err
	}
	conn.SetReadDeadline(readDeadline(ctx, c.opt.IdleTimeout))
	t, p, err := ReadFrame(conn)
	if err != nil || t != FrameWelcome {
		conn.Close()
		if err == nil {
			err = fmt.Errorf("wire: handshake answered with %v", t)
		}
		return nil, false, err
	}
	w, err := decodeWelcome(p)
	if err != nil {
		conn.Close()
		return nil, false, err
	}
	resumed := w.Resumed && w.Token == c.token
	c.token = w.Token

	end := make(chan struct{})
	c.cmu.Lock()
	c.conn = conn
	c.pingEnd = end
	c.cmu.Unlock()
	go c.pinger(conn, end)
	return conn, resumed, nil
}

func (c *Client) pinger(conn net.Conn, end <-chan struct{}) {
	tick := time.NewTicker(c.opt.KeepAlive)
	defer tick.Stop()
	for {
		select {
		case <-end:
			return
		case <-tick.C:
			if c.write(conn, FramePing, nil) != nil {
				return
			}
		}
	}
}

// readDeadline picks the earlier of the idle horizon and the context
// deadline (plus a little slack so ctx.Err is the one that reports).
func readDeadline(ctx context.Context, idle time.Duration) time.Time {
	d := time.Now().Add(idle)
	if cd, ok := ctx.Deadline(); ok && cd.Add(50*time.Millisecond).Before(d) {
		d = cd.Add(50 * time.Millisecond)
	}
	return d
}

// Submit runs one convolution job over the wire and returns the decoded
// compressed result. It blocks until the result is fully streamed, the
// server reports a terminal status (typed *StatusError, unwrapping to
// the engine sentinels), ctx ends (the job is cancelled server-side), or
// the reconnect/retry budgets run out (error wrapping ErrUnavailable).
// Overload rejections are retried MaxRetries times honoring the server's
// RetryAfter hint; lost connections are redialed with exponential
// backoff and the result stream resumes from the last acked chunk.
func (c *Client) Submit(ctx context.Context, tenant string, box grid.Box, input *grid.Field) (*sample.Compressed, error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	s := box.Size()
	if s[0] < 1 || s[0] != s[1] || s[1] != s[2] {
		return nil, fmt.Errorf("wire: box %v must be a cube", box)
	}
	if input == nil || input.Dim != grid.Cube(s[0]) || len(input.Data) != s[0]*s[0]*s[0] {
		return nil, fmt.Errorf("wire: input does not match box %v", box)
	}

	stop := context.AfterFunc(ctx, c.interrupt)
	defer stop()

	asm := sample.NewAssembler()
	jobID := c.nextJob
	c.nextJob++
	submitted := false // the current server session has this job
	reconnects := 0
	retries := 0
	backoff := c.opt.ReconnectBase

	// lost marks the connection dead and pays one unit of the reconnect
	// budget (sleeping the current backoff), or returns the terminal
	// error once the budget is gone.
	lost := func(err error) error {
		if errors.Is(err, ErrFrameCorrupt) {
			c.cFramesCorrupt.Add(1)
		}
		c.closeConn()
		reconnects++
		if reconnects > c.opt.MaxReconnects {
			return fmt.Errorf("%w after %d attempts: %v", ErrUnavailable, reconnects-1, err)
		}
		if err := sleepCtx(ctx, backoff); err != nil {
			return err
		}
		backoff *= 2
		if backoff > c.opt.ReconnectMax {
			backoff = c.opt.ReconnectMax
		}
		return nil
	}

	for {
		if err := ctx.Err(); err != nil {
			c.sendCancel(jobID)
			return nil, err
		}

		// Ensure a live, handshaken connection.
		c.cmu.Lock()
		conn := c.conn
		c.cmu.Unlock()
		if conn == nil {
			var resumed bool
			var err error
			conn, resumed, err = c.connect(ctx)
			if err != nil {
				if ctx.Err() != nil {
					return nil, ctx.Err()
				}
				if err := lost(err); err != nil {
					return nil, err
				}
				continue
			}
			if reconnects > 0 {
				c.cReconnects.Add(1)
			}
			if submitted && !resumed {
				// The server lost our session: start the job over under a
				// fresh id, from byte zero.
				asm.Reset()
				submitted = false
				jobID = c.nextJob
				c.nextJob++
				c.cRestarts.Add(1)
			}
		}

		var err error
		if !submitted {
			err = c.write(conn, FrameSubmit, submitMsg{
				Job: jobID, Deadline: deadlineIn(ctx), Tenant: tenant,
				Lo: box.Lo, K: s[0], Data: input.Data,
			}.encode())
			if err == nil {
				submitted = true
			}
		} else {
			err = c.write(conn, FrameResume, resumeMsg{Job: jobID, Offset: asm.Offset()}.encode())
			if err == nil {
				c.cResumes.Add(1)
			}
		}
		if err != nil {
			if err := lost(err); err != nil {
				return nil, err
			}
			continue
		}

		res, overload, err := c.readResult(ctx, conn, jobID, asm)
		switch {
		case overload != nil:
			// Typed admission rejection: honor the server's RetryAfter
			// hint while budget remains, then resubmit under a fresh id.
			retries++
			if retries > c.opt.MaxRetries {
				return nil, &StatusError{Code: overload.Code, RetryAfter: overload.RetryAfter, Msg: overload.Msg}
			}
			c.cRetries.Add(1)
			wait := overload.RetryAfter
			if wait <= 0 {
				wait = backoff
			}
			if err := sleepCtx(ctx, wait); err != nil {
				return nil, err
			}
			asm.Reset()
			submitted = false
			jobID = c.nextJob
			c.nextJob++
		case err == nil && res != nil:
			c.cJobs.Add(1)
			return res, nil
		case err == nil:
			// Unknown job after a resume: the submit never reached the
			// server. Resubmit from scratch under a fresh id.
			asm.Reset()
			submitted = false
			jobID = c.nextJob
			c.nextJob++
		case errors.As(err, new(*StatusError)), errors.Is(err, context.Canceled),
			errors.Is(err, context.DeadlineExceeded):
			return nil, err
		default:
			if err := lost(err); err != nil {
				return nil, err
			}
		}
	}
}

// readResult drives one attached attempt: it consumes frames until the
// job completes (decoded result), is rejected for overload (the status
// comes back for Submit's retry loop), terminally fails (typed error),
// should be resubmitted (nil, nil, nil — the server does not know the
// job), or the connection dies (transport error for the caller's
// reconnect path).
func (c *Client) readResult(ctx context.Context, conn net.Conn, jobID uint64, asm *sample.Assembler) (*sample.Compressed, *statusMsg, error) {
	lastProgress := time.Now()
	for {
		if err := ctx.Err(); err != nil {
			c.sendCancel(jobID)
			return nil, nil, err
		}
		dl := readDeadline(ctx, c.opt.IdleTimeout)
		if pd := lastProgress.Add(c.opt.ProgressTimeout); pd.Before(dl) {
			dl = pd
		}
		conn.SetReadDeadline(dl)
		t, p, err := ReadFrame(conn)
		if err != nil {
			if ctx.Err() != nil {
				c.sendCancel(jobID)
				return nil, nil, ctx.Err()
			}
			return nil, nil, err // timeout (idle or stalled progress), EOF, corruption
		}
		switch t {
		case FramePing:
			if err := c.write(conn, FramePong, nil); err != nil {
				return nil, nil, err
			}
		case FramePong:
			// Keepalive answer; nothing to do.
		case FrameChunk:
			m, err := decodeChunk(p)
			if err != nil {
				return nil, nil, err
			}
			if m.Job != jobID {
				continue // stale stream from an abandoned job
			}
			if m.Trace != 0 {
				c.lastTrace.Store(m.Trace)
			}
			if err := asm.Add(m.Chunk); err != nil {
				// Gap or CRC failure: the stream state is unusable on this
				// connection; resume from the last good offset.
				return nil, nil, fmt.Errorf("%w: %v", ErrFrameCorrupt, err)
			}
			lastProgress = time.Now()
			if err := c.write(conn, FrameAck, ackMsg{Job: jobID, Offset: asm.Offset()}.encode()); err != nil {
				return nil, nil, err
			}
			if asm.Complete() {
				res, err := asm.Compressed()
				return res, nil, err
			}
		case FrameDone:
			m, err := decodeDone(p)
			if err != nil || m.Job != jobID {
				continue
			}
			if m.Trace != 0 {
				c.lastTrace.Store(m.Trace)
			}
			if !asm.Complete() {
				return nil, nil, fmt.Errorf("%w: done at %d of %d bytes", ErrFrameCorrupt, asm.Offset(), m.Total)
			}
			res, err := asm.Compressed()
			return res, nil, err
		case FrameStatus:
			m, err := decodeStatus(p)
			if err != nil {
				return nil, nil, err
			}
			if m.Job != 0 && m.Job != jobID {
				continue // stale job's terminal status
			}
			if m.Job == jobID && m.Trace != 0 {
				c.lastTrace.Store(m.Trace)
			}
			switch {
			case m.Code.Retryable():
				return nil, &m, nil
			case m.Code == StatusUnknownJob:
				return nil, nil, nil // resubmit from scratch
			default:
				return nil, nil, &StatusError{Code: m.Code, RetryAfter: m.RetryAfter, Msg: m.Msg}
			}
		default:
			return nil, nil, fmt.Errorf("%w: unexpected %v frame", ErrFrameCorrupt, t)
		}
	}
}

// FleetStatus asks the server for its engine's per-device fleet status:
// one row per admission device (empty when the server runs without a
// configured fleet). It shares Submit's session and serializes with it;
// a dead connection is redialed once before the transport error
// surfaces.
func (c *Client) FleetStatus(ctx context.Context) ([]fleet.DeviceStatus, error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	stop := context.AfterFunc(ctx, c.interrupt)
	defer stop()

	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		c.cmu.Lock()
		conn := c.conn
		c.cmu.Unlock()
		if conn == nil {
			var err error
			if conn, _, err = c.connect(ctx); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrUnavailable, err)
			}
		}
		rows, err := c.queryFleet(ctx, conn)
		if err == nil {
			return rows, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		c.closeConn()
		if attempt > 0 {
			return nil, fmt.Errorf("%w: %v", ErrUnavailable, err)
		}
	}
}

// queryFleet sends one fleet query on conn and reads frames until the
// answer (tolerating keepalives and stale job frames from an abandoned
// Submit).
func (c *Client) queryFleet(ctx context.Context, conn net.Conn) ([]fleet.DeviceStatus, error) {
	if err := c.write(conn, FrameFleetQuery, nil); err != nil {
		return nil, err
	}
	for {
		conn.SetReadDeadline(readDeadline(ctx, c.opt.IdleTimeout))
		t, p, err := ReadFrame(conn)
		if err != nil {
			return nil, err
		}
		switch t {
		case FrameFleetStatus:
			m, err := decodeFleetStatus(p)
			if err != nil {
				return nil, err
			}
			return m.Rows, nil
		case FramePing:
			if err := c.write(conn, FramePong, nil); err != nil {
				return nil, err
			}
		case FramePong, FrameChunk, FrameDone, FrameStatus:
			// Keepalives and stale frames from abandoned jobs.
		default:
			return nil, fmt.Errorf("%w: unexpected %v frame", ErrFrameCorrupt, t)
		}
	}
}

// SetTenantWeight sets a tenant's weighted-fair dispatch weight on the
// server at runtime and returns the applied (possibly clamped) weight.
// It shares Submit's session and serializes with it; a dead connection
// is redialed once before the transport error surfaces.
func (c *Client) SetTenantWeight(ctx context.Context, tenant string, weight int) (int, error) {
	if tenant == "" || len(tenant) > maxWireString {
		return 0, fmt.Errorf("wire: tenant %q not sendable", tenant)
	}
	if weight < 1 || weight > maxWireTenantWeight {
		return 0, fmt.Errorf("wire: weight %d out of range [1, %d]", weight, maxWireTenantWeight)
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	stop := context.AfterFunc(ctx, c.interrupt)
	defer stop()

	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		c.cmu.Lock()
		conn := c.conn
		c.cmu.Unlock()
		if conn == nil {
			var err error
			if conn, _, err = c.connect(ctx); err != nil {
				return 0, fmt.Errorf("%w: %v", ErrUnavailable, err)
			}
		}
		applied, err := c.sendWeightUpdate(ctx, conn, tenant, weight)
		if err == nil {
			return applied, nil
		}
		var se *StatusError
		if errors.As(err, &se) {
			return 0, err // the server refused the update; redialing won't help
		}
		if ctx.Err() != nil {
			return 0, ctx.Err()
		}
		c.closeConn()
		if attempt > 0 {
			return 0, fmt.Errorf("%w: %v", ErrUnavailable, err)
		}
	}
}

// sendWeightUpdate sends one weight update on conn and reads frames
// until the server's echo (tolerating keepalives and stale job frames
// from an abandoned Submit).
func (c *Client) sendWeightUpdate(ctx context.Context, conn net.Conn, tenant string, weight int) (int, error) {
	if err := c.write(conn, FrameWeightUpdate, (weightUpdateMsg{Tenant: tenant, Weight: uint32(weight)}).encode()); err != nil {
		return 0, err
	}
	for {
		conn.SetReadDeadline(readDeadline(ctx, c.opt.IdleTimeout))
		t, p, err := ReadFrame(conn)
		if err != nil {
			return 0, err
		}
		switch t {
		case FrameWeightUpdate:
			m, err := decodeWeightUpdate(p)
			if err != nil {
				return 0, err
			}
			return int(m.Weight), nil
		case FrameStatus:
			m, err := decodeStatus(p)
			if err != nil {
				return 0, err
			}
			if m.Job == 0 {
				return 0, &StatusError{Code: m.Code, Msg: m.Msg, RetryAfter: m.RetryAfter}
			}
			// Stale job-scoped status from an abandoned Submit.
		case FramePing:
			if err := c.write(conn, FramePong, nil); err != nil {
				return 0, err
			}
		case FramePong, FrameChunk, FrameDone:
			// Keepalives and stale frames from abandoned jobs.
		default:
			return 0, fmt.Errorf("%w: unexpected %v frame", ErrFrameCorrupt, t)
		}
	}
}

// sendCancel best-effort cancels the job server-side.
func (c *Client) sendCancel(jobID uint64) {
	c.cmu.Lock()
	conn := c.conn
	c.cmu.Unlock()
	if conn != nil {
		c.write(conn, FrameCancel, cancelMsg{Job: jobID}.encode())
	}
}

// deadlineIn converts the context deadline to a relative job deadline.
func deadlineIn(ctx context.Context) time.Duration {
	if d, ok := ctx.Deadline(); ok {
		if r := time.Until(d); r > 0 {
			return r
		}
		return time.Millisecond
	}
	return 0
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
