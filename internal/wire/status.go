package wire

import (
	"context"
	"errors"
	"fmt"
	"time"

	"lowcomm3d/internal/fleet"
	"lowcomm3d/internal/gpu"
	"lowcomm3d/internal/serve"
)

// Status is a typed wire status code. The mapping to engine errors is
// part of the protocol contract (README "Wire protocol"):
//
//	StatusOverloadedQueue  ← *serve.OverloadError, Reason "queue full"
//	StatusOverloadedMemory ← *serve.OverloadError wrapping gpu.ErrOutOfMemory
//	StatusClosing          ← serve.ErrClosed (engine or server draining)
//	StatusCancelled        ← context.Canceled
//	StatusDeadline         ← context.DeadlineExceeded
//
// and back: a client StatusError unwraps to the matching sentinel, so
// errors.Is(err, serve.ErrOverloaded) holds across the wire exactly as it
// does in-process.
type Status uint16

const (
	// StatusOK is never sent; it is the zero value.
	StatusOK Status = iota
	// StatusBadRequest rejects a malformed or protocol-violating message.
	StatusBadRequest
	// StatusOverloadedQueue rejects a job because the engine's bounded
	// queue is full; RetryAfter carries the engine's hint.
	StatusOverloadedQueue
	// StatusOverloadedMemory rejects a job because the device ledger
	// refused its modeled footprint; RetryAfter carries the engine's hint.
	StatusOverloadedMemory
	// StatusClosing rejects a job because the server (or engine) is
	// draining.
	StatusClosing
	// StatusCancelled reports a job cancelled by the client.
	StatusCancelled
	// StatusDeadline reports a job whose deadline expired before it ran
	// to completion.
	StatusDeadline
	// StatusUnknownSession answers a resume attempt whose token matches
	// no live session (expired, or the server restarted).
	StatusUnknownSession
	// StatusUnknownJob answers a resume attempt for a job the session
	// does not hold (the submit never arrived, or the job fully
	// completed and was forgotten).
	StatusUnknownJob
	// StatusInternal reports a server-side failure executing the job.
	StatusInternal
	// StatusFleetDead rejects a job because no fleet device is live —
	// unlike the overload codes, no retry hint helps until devices are
	// readmitted, so clients surface it instead of backing off.
	StatusFleetDead
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusBadRequest:
		return "bad-request"
	case StatusOverloadedQueue:
		return "overloaded-queue"
	case StatusOverloadedMemory:
		return "overloaded-memory"
	case StatusClosing:
		return "closing"
	case StatusCancelled:
		return "cancelled"
	case StatusDeadline:
		return "deadline"
	case StatusUnknownSession:
		return "unknown-session"
	case StatusUnknownJob:
		return "unknown-job"
	case StatusInternal:
		return "internal"
	case StatusFleetDead:
		return "fleet-dead"
	default:
		return fmt.Sprintf("status(%d)", uint16(s))
	}
}

// statusOf maps an engine-side Submit error to its wire status code plus
// the retry-after hint to forward.
func statusOf(err error) (code Status, retryAfter time.Duration) {
	var ov *serve.OverloadError
	switch {
	case errors.Is(err, fleet.ErrFleetDead):
		return StatusFleetDead, 0
	case errors.As(err, &ov):
		if errors.Is(err, gpu.ErrOutOfMemory) {
			return StatusOverloadedMemory, ov.RetryAfter
		}
		return StatusOverloadedQueue, ov.RetryAfter
	case errors.Is(err, serve.ErrClosed):
		return StatusClosing, 0
	case errors.Is(err, context.Canceled):
		return StatusCancelled, 0
	case errors.Is(err, context.DeadlineExceeded):
		return StatusDeadline, 0
	default:
		return StatusInternal, 0
	}
}

// Retryable reports whether the status marks a transient condition a
// client should retry (honoring RetryAfter) rather than surface.
func (s Status) Retryable() bool {
	return s == StatusOverloadedQueue || s == StatusOverloadedMemory
}

// StatusError is the typed client-side error for a server status frame.
// It unwraps to the engine sentinel the code maps from, so callers keep
// using errors.Is(err, serve.ErrOverloaded) / gpu.ErrOutOfMemory /
// serve.ErrClosed / context.Canceled / context.DeadlineExceeded across
// the wire.
type StatusError struct {
	Code       Status
	RetryAfter time.Duration // server hint; zero when the code carries none
	Msg        string        // server-side error text, advisory only
}

func (e *StatusError) Error() string {
	s := fmt.Sprintf("wire: %s", e.Code)
	if e.RetryAfter > 0 {
		s += fmt.Sprintf(" (retry after %v)", e.RetryAfter)
	}
	if e.Msg != "" {
		s += ": " + e.Msg
	}
	return s
}

// Unwrap exposes the engine sentinels matching the status code.
func (e *StatusError) Unwrap() []error {
	switch e.Code {
	case StatusOverloadedQueue:
		return []error{serve.ErrOverloaded}
	case StatusOverloadedMemory:
		return []error{serve.ErrOverloaded, gpu.ErrOutOfMemory}
	case StatusClosing:
		return []error{serve.ErrClosed}
	case StatusCancelled:
		return []error{context.Canceled}
	case StatusDeadline:
		return []error{context.DeadlineExceeded}
	case StatusFleetDead:
		return []error{fleet.ErrFleetDead}
	default:
		return nil
	}
}
