package wire

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"lowcomm3d/internal/fleet"
	"lowcomm3d/internal/gpu"
	"lowcomm3d/internal/grid"
	"lowcomm3d/internal/serve"
)

// TestFleetStatusPayloadRoundTrip pins the fleet-status codec: rows
// survive encode/decode exactly, the empty answer is legal, and a
// hostile row count is refused before any row-sized work.
func TestFleetStatusPayloadRoundTrip(t *testing.T) {
	m := fleetStatusMsg{Rows: []fleet.DeviceStatus{
		{Name: "v100-a", Box: 0, Capacity: 16 * gpu.GiB, Used: 123456,
			Queued: 3, Inflight: 1, Steals: 7, EWMA: 42 * time.Millisecond,
			Health: fleet.Suspect, Requeued: 5},
		{Name: "v100-b", Box: 1, Capacity: 32 * gpu.GiB, Health: fleet.Dead},
	}}
	got, err := decodeFleetStatus(m.encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Rows, m.Rows) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got.Rows, m.Rows)
	}

	empty, err := decodeFleetStatus(fleetStatusMsg{}.encode())
	if err != nil || len(empty.Rows) != 0 {
		t.Fatalf("empty fleet status: rows=%v err=%v", empty.Rows, err)
	}

	var e enc
	e.u32(1 << 30) // forged row count with no rows behind it
	if _, err := decodeFleetStatus(e.b); err == nil {
		t.Fatal("decode accepted a forged 2^30-row fleet status")
	}
}

// TestClientFleetStatus exercises the query over a real connection: the
// server answers with one row per configured device, ledgers drained
// back to zero after a completed job, and the same client session keeps
// submitting afterwards.
func TestClientFleetStatus(t *testing.T) {
	devs := []*gpu.Device{gpu.V100_16GB(), gpu.V100_32GB()}
	eng := testEngine(t, serve.Options{
		Devices: devs, DeviceBox: []int{0, 1},
	})
	s := testServer(t, eng, ServerOptions{})
	c := NewClient(testClientOptions(s.Addr().String()))
	defer c.Close()

	box := grid.CubeAt(grid.Point{0, 0, 0}, 4)
	in := testField(4, 1)
	res, err := c.Submit(context.Background(), "a", box, in)
	if err != nil {
		t.Fatal(err)
	}
	_ = res

	rows, err := c.FleetStatus(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(devs) {
		t.Fatalf("fleet status returned %d rows, want %d", len(rows), len(devs))
	}
	for i, r := range rows {
		if r.Name != devs[i].Name || r.Capacity != devs[i].Capacity {
			t.Errorf("row %d = %+v, want device %q capacity %d", i, r, devs[i].Name, devs[i].Capacity)
		}
		if r.Box != i {
			t.Errorf("row %d box = %d, want %d", i, r.Box, i)
		}
		if r.Used != 0 {
			t.Errorf("row %d still holds %d bytes after job completion", i, r.Used)
		}
	}
	if rows[0].EWMA <= 0 && rows[1].EWMA <= 0 {
		t.Errorf("no device EWMA over the wire after a completed job: %+v", rows)
	}

	// The session is still good for work after the query.
	if _, err := c.Submit(context.Background(), "a", box, in); err != nil {
		t.Fatalf("submit after fleet query: %v", err)
	}
}

// TestClientFleetStatusNoFleet pins the degenerate answer: an engine
// without configured devices reports zero rows, not an error.
func TestClientFleetStatusNoFleet(t *testing.T) {
	eng := testEngine(t, serve.Options{})
	s := testServer(t, eng, ServerOptions{})
	c := NewClient(testClientOptions(s.Addr().String()))
	defer c.Close()

	rows, err := c.FleetStatus(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("fleetless engine reported %d device rows: %+v", len(rows), rows)
	}
}

// TestClientFleetDeadStatus pins the degraded-admission protocol path:
// with every fleet device dead, a submit comes back as the typed
// StatusFleetDead — errors.Is(err, fleet.ErrFleetDead) holds across the
// wire, the code is not retryable — and the fleet query reports the
// devices' health as dead.
func TestClientFleetDeadStatus(t *testing.T) {
	devs := []*gpu.Device{gpu.V100_16GB(), gpu.V100_16GB()}
	eng := testEngine(t, serve.Options{Devices: devs})
	s := testServer(t, eng, ServerOptions{})
	c := NewClient(testClientOptions(s.Addr().String()))
	defer c.Close()

	for di := range devs {
		eng.Scheduler().ReportDeviceFailure(di, errDeadTest)
	}
	box := grid.CubeAt(grid.Point{0, 0, 0}, 8)
	_, err := c.Submit(context.Background(), "a", box, testField(8, 1))
	if !errors.Is(err, fleet.ErrFleetDead) {
		t.Fatalf("submit error %v, want fleet.ErrFleetDead across the wire", err)
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Code != StatusFleetDead {
		t.Fatalf("submit error %v, want StatusFleetDead", err)
	}
	if se.Code.Retryable() {
		t.Fatalf("StatusFleetDead marked retryable")
	}

	rows, err := c.FleetStatus(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if r.Health != fleet.Dead {
			t.Errorf("row %d health %v over the wire, want dead", i, r.Health)
		}
	}
}

var errDeadTest = errors.New("test: induced device death")
