package wire

import (
	"context"
	"strings"
	"testing"

	"lowcomm3d/internal/grid"
	"lowcomm3d/internal/serve"
)

// TestWeightUpdatePayloadRoundTrip pins the weight-update codec: updates
// survive encode/decode exactly, and hostile payloads (empty tenant,
// zero or oversized weight, trailing bytes) are refused.
func TestWeightUpdatePayloadRoundTrip(t *testing.T) {
	m := weightUpdateMsg{Tenant: "acme", Weight: 7}
	got, err := decodeWeightUpdate(m.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("round trip: got %+v, want %+v", got, m)
	}

	for _, bad := range []weightUpdateMsg{
		{Tenant: "", Weight: 1},
		{Tenant: "acme", Weight: 0},
		{Tenant: "acme", Weight: maxWireTenantWeight + 1},
	} {
		if _, err := decodeWeightUpdate(bad.encode()); err == nil {
			t.Errorf("decode accepted hostile update %+v", bad)
		}
	}
	if _, err := decodeWeightUpdate(append(m.encode(), 0)); err == nil {
		t.Error("decode accepted trailing bytes")
	}
	if _, err := decodeWeightUpdate(m.encode()[:3]); err == nil {
		t.Error("decode accepted a truncated update")
	}
}

// TestClientSetTenantWeight exercises the runtime weight path over a
// real connection: ServerOptions.TenantWeights seeds the engine at
// start, the client's update lands (echoed back with the applied
// weight), and the same session keeps submitting afterwards.
func TestClientSetTenantWeight(t *testing.T) {
	eng := testEngine(t, serve.Options{})
	s := testServer(t, eng, ServerOptions{TenantWeights: map[string]int{"seeded": 2, "ignored": 0}})
	c := NewClient(testClientOptions(s.Addr().String()))
	defer c.Close()

	if got := eng.TenantWeight("seeded"); got != 2 {
		t.Fatalf("seeded tenant weight = %d, want 2 from ServerOptions", got)
	}
	if got := eng.TenantWeight("ignored"); got != 1 {
		t.Fatalf("sub-1 seed applied: weight = %d, want default 1", got)
	}

	applied, err := c.SetTenantWeight(context.Background(), "acme", 3)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 3 {
		t.Fatalf("applied weight = %d, want echo of 3", applied)
	}
	if got := eng.TenantWeight("acme"); got != 3 {
		t.Fatalf("engine weight after wire update = %d, want 3", got)
	}

	// Client-side validation refuses unsendable updates before any I/O.
	if _, err := c.SetTenantWeight(context.Background(), "", 1); err == nil {
		t.Error("empty tenant accepted")
	}
	if _, err := c.SetTenantWeight(context.Background(), "acme", 0); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := c.SetTenantWeight(context.Background(), strings.Repeat("x", maxWireString+1), 1); err == nil {
		t.Error("oversized tenant accepted")
	}

	// The session is still good for work after the update.
	box := grid.CubeAt(grid.Point{0, 0, 0}, 4)
	if _, err := c.Submit(context.Background(), "acme", box, testField(4, 1)); err != nil {
		t.Fatalf("submit after weight update: %v", err)
	}
}
