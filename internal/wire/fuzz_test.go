package wire

import (
	"bytes"
	"testing"
)

// FuzzWireFrameCodec hammers the frame decoder and every payload decoder
// with arbitrary bytes. The invariants:
//
//   - ReadFrame never panics and never returns a payload larger than
//     MaxFramePayload (the bounded-allocation contract: a hostile length
//     field must not size an allocation the stream cannot back).
//   - An accepted frame re-encodes canonically: EncodeFrame of the
//     decoded (type, payload) reproduces exactly the bytes consumed.
//   - No payload decoder panics on any byte string, whatever frame type
//     claimed to carry it — CRCs authenticate transit, not peers.
func FuzzWireFrameCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeFrame(FramePing, nil))
	f.Add(EncodeFrame(FrameHello, helloMsg{Version: ProtoVersion, Token: "tok"}.encode()))
	f.Add(EncodeFrame(FrameAck, ackMsg{Job: 1, Offset: 64}.encode()))
	truncated := EncodeFrame(FrameStatus, statusMsg{Job: 2, Code: StatusInternal, Msg: "x"}.encode())
	f.Add(truncated[:len(truncated)-2])

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		ft, payload, err := ReadFrame(r)
		if err == nil {
			if len(payload) > MaxFramePayload {
				t.Fatalf("accepted %d-byte payload beyond MaxFramePayload", len(payload))
			}
			consumed := len(data) - r.Len()
			if want := HeaderSize + len(payload); consumed != want {
				t.Fatalf("consumed %d bytes for a %d-byte frame", consumed, want)
			}
			reenc := EncodeFrame(ft, payload)
			if !bytes.Equal(reenc, data[:consumed]) {
				t.Fatalf("decode/encode is not canonical: %x != %x", reenc, data[:consumed])
			}
			ft2, p2, err2 := ReadFrame(bytes.NewReader(reenc))
			if err2 != nil || ft2 != ft || !bytes.Equal(p2, payload) {
				t.Fatalf("re-read of re-encoded frame: %v %v", ft2, err2)
			}
		}

		// Every payload decoder must survive the raw input regardless of
		// framing outcome. Errors are expected; panics and runaway
		// allocations are not.
		decodeHello(data)
		decodeWelcome(data)
		decodeSubmit(data)
		decodeChunk(data)
		decodeAck(data)
		decodeDone(data)
		decodeStatus(data)
		decodeResume(data)
		decodeCancel(data)
	})
}
