// Package wire is the network front door for the serving engine: a
// framed binary protocol over TCP that streams octree-compressed results
// — the paper's communication format — as CRC-stamped resumable chunks
// (internal/sample's chunk framing), with the failure modes real networks
// impose designed in rather than bolted on. Sessions survive connection
// loss: a client that loses its connection mid-stream reconnects with its
// session token and resumes result streaming from the last acked chunk
// offset; keepalive pings plus idle read deadlines detect half-open
// peers; admission rejections from serve.Engine map to typed status codes
// carrying the engine's retry-after hint; and a bounded unacked window
// applies backpressure to result streaming the same way the engine's
// bounded queue applies it to admission.
package wire

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// ProtoVersion is the handshake protocol version. A Hello carrying any
// other version is refused with StatusBadRequest.
const ProtoVersion = 1

// FrameType tags one frame.
type FrameType uint8

const (
	// FrameHello opens a session (client → server): protocol version plus
	// an optional token to resume a previous session.
	FrameHello FrameType = iota + 1
	// FrameWelcome answers a Hello (server → client) with the session
	// token and whether a presented token was resumed.
	FrameWelcome
	// FrameSubmit submits one convolution job (client → server).
	FrameSubmit
	// FrameChunk carries one compressed-result chunk (server → client).
	FrameChunk
	// FrameAck reports the client's contiguous assembled byte offset —
	// the resume point after a reconnect, and the window release for the
	// server's backpressured stream.
	FrameAck
	// FrameDone marks a job fully streamed and fully acked.
	FrameDone
	// FrameStatus carries a typed failure or rejection for a job (or,
	// with job ID 0, for the session).
	FrameStatus
	// FramePing is a keepalive probe; the peer answers FramePong.
	FramePing
	// FramePong answers a ping.
	FramePong
	// FrameCancel cancels a submitted job (client → server); the job's
	// context is cancelled wherever it is (queued or running).
	FrameCancel
	// FrameResume re-requests streaming of a job after a reconnect,
	// carrying the client's assembled offset.
	FrameResume
	// FrameFleetQuery asks for the engine's per-device fleet status
	// (client → server); the payload is empty.
	FrameFleetQuery
	// FrameFleetStatus answers a fleet query (server → client) with one
	// row per device: name, box, ledger, queue depth, and EWMA latency.
	FrameFleetStatus
	// FrameWeightUpdate sets a tenant's weighted-fair dispatch weight at
	// runtime (client → server); the server echoes the applied update
	// back with the clamped weight, or answers StatusBadRequest.
	FrameWeightUpdate

	frameTypeMax = FrameWeightUpdate
)

func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameWelcome:
		return "welcome"
	case FrameSubmit:
		return "submit"
	case FrameChunk:
		return "chunk"
	case FrameAck:
		return "ack"
	case FrameDone:
		return "done"
	case FrameStatus:
		return "status"
	case FramePing:
		return "ping"
	case FramePong:
		return "pong"
	case FrameCancel:
		return "cancel"
	case FrameResume:
		return "resume"
	case FrameFleetQuery:
		return "fleet-query"
	case FrameFleetStatus:
		return "fleet-status"
	case FrameWeightUpdate:
		return "weight-update"
	default:
		return fmt.Sprintf("frame(%d)", uint8(t))
	}
}

// Frame layout (all little-endian):
//
//	off  0  magic      uint32  "LCW1"
//	off  4  type       uint8
//	off  5  version    uint8   frame-format version (1)
//	off  6  reserved   uint16  0
//	off  8  length     uint32  payload bytes
//	off 12  payloadCRC uint32  CRC32-C of the payload
//	off 16  headerCRC  uint32  CRC32-C of bytes [0,16)
//	off 20  payload    [length]byte
//
// The header CRC authenticates the length field before any
// payload-sized work happens, and the payload CRC catches in-flight
// corruption of the body (the chaos matrix's corrupt fault flips one
// bit anywhere in a frame; one of the two CRCs must catch it).
const (
	frameMagic   = 0x4c435731 // "LCW1"
	frameVersion = 1

	// HeaderSize is the fixed frame header length in bytes.
	HeaderSize = 20

	// MaxFramePayload bounds a single frame's payload (16 MiB): big
	// enough for a Submit carrying a 128³ float64 input, small enough
	// that a hostile length cannot size a catastrophic allocation.
	MaxFramePayload = 16 << 20

	// frameReadChunk is the step in which a payload is read and grown —
	// the decoder never allocates more than one chunk ahead of bytes
	// actually received, so a forged length that passes its CRC still
	// cannot commit memory the stream never delivers (the same
	// bounded-allocation discipline as octree.DecodeMeta and
	// sample.ReadCompressed).
	frameReadChunk = 64 * 1024
)

// ErrFrameCorrupt is wrapped by every decode failure that indicates the
// byte stream itself is damaged (bad magic, CRC mismatch, implausible
// length). A peer seeing it must treat the connection as dead; session
// state survives for a resume.
var ErrFrameCorrupt = errors.New("wire: corrupt frame")

var frameCRC = crc32.MakeTable(crc32.Castagnoli)

// AppendFrame appends the encoded frame to dst and returns the extended
// slice. The result of one AppendFrame is written to the connection as a
// single Write, so fault injectors see one write per frame.
func AppendFrame(dst []byte, t FrameType, payload []byte) []byte {
	var h [HeaderSize]byte
	le32 := func(off int, v uint32) {
		h[off] = byte(v)
		h[off+1] = byte(v >> 8)
		h[off+2] = byte(v >> 16)
		h[off+3] = byte(v >> 24)
	}
	le32(0, frameMagic)
	h[4] = byte(t)
	h[5] = frameVersion
	le32(8, uint32(len(payload)))
	le32(12, crc32.Checksum(payload, frameCRC))
	le32(16, crc32.Checksum(h[:16], frameCRC))
	dst = append(dst, h[:]...)
	return append(dst, payload...)
}

// EncodeFrame encodes one frame into a fresh buffer.
func EncodeFrame(t FrameType, payload []byte) []byte {
	return AppendFrame(make([]byte, 0, HeaderSize+len(payload)), t, payload)
}

// ReadFrame reads and validates one frame. The header CRC is checked
// before the length is used for anything, the length is bounded by
// MaxFramePayload, and the payload is read in frameReadChunk steps so no
// allocation runs ahead of received bytes. Corruption of any kind
// returns an error wrapping ErrFrameCorrupt; a clean EOF before any
// header byte returns io.EOF.
func ReadFrame(r io.Reader) (FrameType, []byte, error) {
	var h [HeaderSize]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("wire: reading frame header: %w", err)
	}
	le32 := func(off int) uint32 {
		return uint32(h[off]) | uint32(h[off+1])<<8 | uint32(h[off+2])<<16 | uint32(h[off+3])<<24
	}
	if got, want := crc32.Checksum(h[:16], frameCRC), le32(16); got != want {
		return 0, nil, fmt.Errorf("%w: header CRC %#x, want %#x", ErrFrameCorrupt, got, want)
	}
	if m := le32(0); m != frameMagic {
		return 0, nil, fmt.Errorf("%w: magic %#x", ErrFrameCorrupt, m)
	}
	if v := h[5]; v != frameVersion {
		return 0, nil, fmt.Errorf("%w: frame version %d", ErrFrameCorrupt, v)
	}
	t := FrameType(h[4])
	if t < FrameHello || t > frameTypeMax {
		return 0, nil, fmt.Errorf("%w: frame type %d", ErrFrameCorrupt, uint8(t))
	}
	if rsv := uint32(h[6]) | uint32(h[7])<<8; rsv != 0 {
		return 0, nil, fmt.Errorf("%w: reserved bits %#x", ErrFrameCorrupt, rsv)
	}
	length := int(le32(8))
	if length > MaxFramePayload {
		return 0, nil, fmt.Errorf("%w: payload length %d exceeds %d", ErrFrameCorrupt, length, MaxFramePayload)
	}
	payload := make([]byte, 0, minInt(length, frameReadChunk))
	var tmp [4096]byte
	for len(payload) < length {
		n := minInt(length-len(payload), len(tmp))
		if _, err := io.ReadFull(r, tmp[:n]); err != nil {
			return 0, nil, fmt.Errorf("wire: reading frame payload at %d/%d: %w", len(payload), length, err)
		}
		payload = append(payload, tmp[:n]...)
	}
	if got, want := crc32.Checksum(payload, frameCRC), le32(12); got != want {
		return 0, nil, fmt.Errorf("%w: payload CRC %#x, want %#x", ErrFrameCorrupt, got, want)
	}
	return t, payload, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
