package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"lowcomm3d/internal/cluster"
	"lowcomm3d/internal/gpu"
	"lowcomm3d/internal/grid"
	"lowcomm3d/internal/obs/jobtrace"
	"lowcomm3d/internal/serve"
	"lowcomm3d/internal/telemetry"
)

// The chaos matrix exercises the acceptance contract of the wire layer:
// for every seeded fault schedule, a client Submit either completes with
// a result byte-identical to the fault-free run or returns a typed error
// — and in both cases nothing hangs and no goroutine outlives its server.
//
// Determinism comes from cluster.ChaosConn: fault decisions depend only
// on (seed, write index), and both endpoints emit exactly one conn.Write
// per frame, so a write index IS a protocol state. Sweeping each fault
// kind across the first six writes of each side covers handshake, submit,
// and the streaming window on the server conn, and handshake, submit, and
// the ack stream on the client conn.

// chaosKinds are the fault classes of the matrix, by ChaosConn semantics:
// drop turns the conn silently half-open, corrupt flips one bit of one
// frame, delay stalls a write, close tears the conn down.
var chaosKinds = []struct {
	name string
	kind cluster.ConnFaultKind
}{
	{"drop", cluster.ConnDrop},
	{"corrupt", cluster.ConnCorrupt},
	{"delay", cluster.ConnDelay},
	{"close", cluster.ConnClose},
}

// typedWireError reports whether err is one of the protocol's declared
// failure shapes — the only errors a chaos run may surface.
func typedWireError(err error) bool {
	var se *StatusError
	return errors.As(err, &se) ||
		errors.Is(err, ErrUnavailable) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// chaosCase runs one Submit against a server/client pair with the given
// fault schedule installed on the first connection of one side, and
// checks the complete-identical-or-typed-error contract.
func chaosCase(t *testing.T, eng *serve.Engine, flight *telemetry.Recorder, want []float64,
	serverSide bool, plan cluster.FaultPlan, points ...cluster.ConnFaultPoint) {
	t.Helper()
	srvOpts := ServerOptions{
		ChunkBytes: 64,
		Window:     128,
		SessionTTL: 2 * time.Second,
		Flight:     flight,
	}
	var wrapped atomic.Bool
	if serverSide {
		srvOpts.ConnWrap = func(c net.Conn) net.Conn {
			// Only the first accepted connection is faulty, so recovery on
			// a fresh connection can always succeed; the fault schedule
			// itself stays fully deterministic.
			if wrapped.CompareAndSwap(false, true) {
				return cluster.NewChaosConn(c, plan, points...)
			}
			return c
		}
	}
	srv := testServer(t, eng, srvOpts)

	opts := testClientOptions(srv.Addr().String())
	opts.MaxReconnects = 16
	if !serverSide {
		dialed := false
		opts.Dial = func() (net.Conn, error) {
			conn, err := net.Dial("tcp", srv.Addr().String())
			if err != nil || dialed {
				return conn, err
			}
			dialed = true
			return cluster.NewChaosConn(conn, plan, points...), nil
		}
	}
	c := NewClient(opts)
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	box := grid.CubeAt(grid.Point{4, 4, 4}, 4)
	got, err := c.Submit(ctx, "chaos", box, testField(4, 42))
	switch {
	case err == nil:
		sameSamples(t, got, want)
	case typedWireError(err):
		t.Logf("typed error (acceptable outcome): %v", err)
	default:
		t.Fatalf("untyped error escaped the wire layer: %v", err)
	}
	c.Close()
	srv.Drain()
}

// dumpPostmortem writes the flight recorder's postmortem to the path in
// $WIRE_POSTMORTEM (the CI chaos job's artifact), if set.
func dumpPostmortem(t *testing.T, flight *telemetry.Recorder) {
	t.Helper()
	path := os.Getenv("WIRE_POSTMORTEM")
	if path == "" {
		return
	}
	if err := flight.DumpFile(path); err != nil {
		t.Errorf("writing postmortem artifact: %v", err)
	}
}

// TestWireChaosMatrix sweeps every fault kind across the first six write
// indices of each side's first connection.
func TestWireChaosMatrix(t *testing.T) {
	eng := testEngine(t, serve.Options{})
	before := runtime.NumGoroutine()
	flight := telemetry.NewRecorder(8, 64)
	box := grid.CubeAt(grid.Point{4, 4, 4}, 4)
	want := directResult(t, eng, "chaos", box, testField(4, 42))

	for _, side := range []struct {
		name   string
		server bool
	}{{"client-conn", false}, {"server-conn", true}} {
		for _, k := range chaosKinds {
			for w := 1; w <= 6; w++ {
				name := fmt.Sprintf("%s/%s/write%d", side.name, k.name, w)
				t.Run(name, func(t *testing.T) {
					chaosCase(t, eng, flight, want, side.server,
						cluster.FaultPlan{Seed: int64(w)},
						cluster.ConnFaultPoint{Write: w, Kind: k.kind})
				})
			}
		}
	}
	dumpPostmortem(t, flight)
	checkGoroutines(t, before)
}

// TestWireChaosTraceResume kills the first server connection mid-stream
// and checks the tracing contract across the recovery: the resumed
// session keeps the server-minted TraceID (the client sees one id across
// both connections), and the reassembled timeline in the shared jobtrace
// collector is gap-free — sequence numbers dense from zero, timestamps
// monotone, exactly one admission and one completion, no restart
// artifacts. Run under -race this also exercises the trace handoff
// between the session pump, ack handler, and failover paths.
func TestWireChaosTraceResume(t *testing.T) {
	col := jobtrace.NewCollector()
	eng := testEngine(t, serve.Options{Jobs: col, Device: gpu.V100_16GB()})
	before := runtime.NumGoroutine()
	flight := telemetry.NewRecorder(8, 64)
	box := grid.CubeAt(grid.Point{4, 4, 4}, 4)
	want := directResult(t, eng, "trace", box, testField(4, 42))

	srvOpts := ServerOptions{
		// A handful of chunks per result: enough that the close lands
		// mid-stream, few enough that stream+ack events fit the ring.
		ChunkBytes: 1024,
		Window:     4096,
		SessionTTL: 2 * time.Second,
		Flight:     flight,
		Jobs:       col,
	}
	var wrapped atomic.Bool
	srvOpts.ConnWrap = func(c net.Conn) net.Conn {
		// First accepted connection dies at its third write: welcome,
		// one chunk, then gone. The retry connects clean and resumes.
		if wrapped.CompareAndSwap(false, true) {
			return cluster.NewChaosConn(c, cluster.FaultPlan{Seed: 1},
				cluster.ConnFaultPoint{Write: 3, Kind: cluster.ConnClose})
		}
		return c
	}
	srv := testServer(t, eng, srvOpts)

	c := NewClient(testClientOptions(srv.Addr().String()))
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	got, err := c.Submit(ctx, "trace", box, testField(4, 42))
	if err != nil {
		t.Fatalf("submit across mid-stream close: %v", err)
	}
	sameSamples(t, got, want)
	if n := c.Trace().CounterValue("wire.client.resumes"); n < 1 {
		t.Fatalf("resumes = %d; the fault did not force a session resume", n)
	}
	id := c.LastTraceID()
	if id == 0 {
		t.Fatal("LastTraceID() = 0; server did not echo a TraceID")
	}

	// The server finishes the timeline when the final ack lands, which
	// races the client's return; poll for the completed snapshot.
	var snap jobtrace.JobSnapshot
	deadline := time.Now().Add(2 * time.Second)
	for {
		var ok bool
		if snap, ok = col.Job(jobtrace.TraceID(id)); ok && snap.Done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %d not finished in collector (found=%v done=%v)", id, ok, snap.Done)
		}
		time.Sleep(time.Millisecond)
	}

	if snap.Tenant != "trace" {
		t.Fatalf("tenant = %q, want %q", snap.Tenant, "trace")
	}
	if snap.Dropped != 0 {
		t.Fatalf("timeline dropped %d events; reassembly has gaps", snap.Dropped)
	}
	counts := map[string]int{}
	var lastAt int64
	for i, ev := range snap.Events {
		if ev.Seq != uint32(i) {
			t.Fatalf("event %d: seq %d; sequence not dense (gap or duplicate)", i, ev.Seq)
		}
		if ev.AtNs < lastAt {
			t.Fatalf("event %d (%s): timestamp went backwards", i, ev.Kind)
		}
		lastAt = ev.AtNs
		counts[ev.Kind]++
	}
	if counts["admit"] != 1 || counts["complete"] != 1 {
		t.Fatalf("admit=%d complete=%d; want exactly one of each (no restart artifacts): %v",
			counts["admit"], counts["complete"], counts)
	}
	if counts["fail"] != 0 {
		t.Fatalf("timeline records %d failures on a successful job: %+v", counts["fail"], snap.Events)
	}
	for _, k := range []string{"place", "dequeue", "stream", "ack"} {
		if counts[k] == 0 {
			t.Fatalf("timeline missing %q events: %v", k, counts)
		}
	}
	if counts["stream"] < 2 {
		t.Fatalf("stream events = %d; want several chunks spanning the reconnect", counts["stream"])
	}

	c.Close()
	srv.Drain()
	checkGoroutines(t, before)
}

// TestWireChaosSeeded runs seeded probabilistic schedules on BOTH sides
// of EVERY connection (reconnects included), the regime where faults can
// compound: a resume can itself be corrupted, a reconnect can drop. The
// contract stays the same; with faults on every connection, exhausting
// the reconnect budget (typed ErrUnavailable) is a legitimate outcome.
func TestWireChaosSeeded(t *testing.T) {
	eng := testEngine(t, serve.Options{})
	before := runtime.NumGoroutine()
	flight := telemetry.NewRecorder(8, 64)
	box := grid.CubeAt(grid.Point{4, 4, 4}, 4)
	want := directResult(t, eng, "chaos", box, testField(4, 42))

	completed := 0
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			plan := cluster.FaultPlan{
				Seed:        seed,
				DropProb:    0.01,
				CorruptProb: 0.03,
				DelayProb:   0.10,
				Delay:       time.Millisecond,
			}
			srvOpts := ServerOptions{
				ChunkBytes: 128,
				Window:     512,
				SessionTTL: 2 * time.Second,
				Flight:     flight,
			}
			// Each connection gets its own seed (derived, still
			// deterministic): a schedule whose write 2 always corrupts
			// would otherwise replay identically on every reconnect and
			// foreclose recovery.
			var accepts atomic.Int64
			srvOpts.ConnWrap = func(c net.Conn) net.Conn {
				p := plan
				p.Seed = plan.Seed*1000 + accepts.Add(1)
				return cluster.NewChaosConn(c, p)
			}
			srv := testServer(t, eng, srvOpts)

			opts := testClientOptions(srv.Addr().String())
			opts.MaxReconnects = 64
			opts.MaxRetries = 8
			dials := int64(0)
			opts.Dial = func() (net.Conn, error) {
				conn, err := net.Dial("tcp", srv.Addr().String())
				if err != nil {
					return nil, err
				}
				p := plan
				dials++
				p.Seed = plan.Seed*1000 + 500 + dials
				return cluster.NewChaosConn(conn, p), nil
			}
			c := NewClient(opts)
			defer c.Close()

			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			defer cancel()
			got, err := c.Submit(ctx, "chaos", box, testField(4, 42))
			switch {
			case err == nil:
				sameSamples(t, got, want)
				completed++
			case typedWireError(err):
				t.Logf("seed %d: typed error: %v", seed, err)
			default:
				t.Fatalf("seed %d: untyped error escaped the wire layer: %v", seed, err)
			}
			c.Close()
			srv.Drain()
		})
	}
	if completed == 0 {
		t.Error("no seeded schedule completed; fault rates leave no recovery path")
	}
	dumpPostmortem(t, flight)
	checkGoroutines(t, before)
}
