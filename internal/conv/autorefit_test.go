package conv

import (
	"errors"
	"testing"

	"lowcomm3d/internal/gpu"
	"lowcomm3d/internal/green"
	"lowcomm3d/internal/grid"
)

// planPeak returns the modeled peak footprint of the n/k/r pipeline by
// simulating its allocation schedule on an effectively unbounded device.
func planPeak(t *testing.T, n, k, r int) int64 {
	t.Helper()
	mb, err := gpu.LocalConvMemory(n, k, r)
	if err != nil {
		t.Fatal(err)
	}
	big := &gpu.Device{Name: "plan", Capacity: 1 << 40}
	ok, peak := mb.FitsOn(big)
	if !ok || peak <= 0 {
		t.Fatalf("n=%d k=%d r=%d does not fit an unbounded device", n, k, r)
	}
	return peak
}

func TestRunAutoRefitHalvesSubSizeToFit(t *testing.T) {
	const n, r = 32, 8
	peak16 := planPeak(t, n, 16, r)
	peak8 := planPeak(t, n, 8, r)
	if peak8 >= peak16 {
		t.Fatalf("memory model not monotone in k: peak(k=8)=%d ≥ peak(k=16)=%d", peak8, peak16)
	}
	// A device that admits the k=8 pipeline but not the k=16 one.
	dev := &gpu.Device{Name: "half", Capacity: peak8 + (peak16-peak8)/2}

	f := blobField(grid.Cube(n), 21)
	dc := Decomposed{Kernel: green.Gaussian{Sigma: 2}, SubSize: 16, FarRate: r, Cfg: Config{Pruned: true}}
	got, ds, k, err := dc.RunAutoRefit(f, dev, 4)
	if err != nil {
		t.Fatal(err)
	}
	if k != 8 {
		t.Errorf("admitted sub-domain size = %d, want 8", k)
	}
	if len(ds.PerSub) == 0 {
		t.Error("no sub-domains processed")
	}
	// Auto-refit must be exactly a RunAdaptive at the admitted size.
	direct := dc
	direct.SubSize = 8
	want, _, err := direct.RunAdaptive(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rel, _ := grid.RelL2(got, want); rel > 1e-12 {
		t.Errorf("auto-refit result differs from direct k=8 adaptive run by %g", rel)
	}
}

func TestRunAutoRefitKeepsFittingSize(t *testing.T) {
	const n, r = 32, 8
	// Plenty of room: the requested size must be kept as-is.
	dev := &gpu.Device{Name: "roomy", Capacity: 2 * planPeak(t, n, 16, r)}
	f := blobField(grid.Cube(n), 33)
	dc := Decomposed{Kernel: green.Gaussian{Sigma: 2}, SubSize: 16, FarRate: r, Cfg: Config{Pruned: true}}
	_, _, k, err := dc.RunAutoRefit(f, dev, 4)
	if err != nil {
		t.Fatal(err)
	}
	if k != 16 {
		t.Errorf("admitted sub-domain size = %d, want the requested 16", k)
	}
}

func TestRunAutoRefitReportsOOMBelowFloor(t *testing.T) {
	const n, r = 32, 8
	// Too small for even the k=4 pipeline: typed OOM, no solve.
	dev := &gpu.Device{Name: "tiny", Capacity: planPeak(t, n, 4, r) / 2}
	f := blobField(grid.Cube(n), 5)
	dc := Decomposed{Kernel: green.Gaussian{Sigma: 2}, SubSize: 16, FarRate: r, Cfg: Config{Pruned: true}}
	if _, _, _, err := dc.RunAutoRefit(f, dev, 4); !errors.Is(err, gpu.ErrOutOfMemory) {
		t.Errorf("got %v, want ErrOutOfMemory", err)
	}
}
