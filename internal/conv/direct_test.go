package conv

import (
	"fmt"
	"testing"

	"lowcomm3d/internal/green"
	"lowcomm3d/internal/grid"
)

func TestDirectMatchesBaselineForCompactKernel(t *testing.T) {
	// σ=1.5 keeps the spectrum at the Nyquist frequency down to ~1.5e-5
	// (a σ=1 kernel is not band-limited on the grid and its spatial form
	// rings at the 1e-3 level — measured and excluded deliberately), so a
	// radius-9 truncation agrees with the full FFT convolution to ~1e-4.
	if testing.Short() {
		t.Skip("multi-second direct summation; skipped in -short")
	}
	d := grid.Cube(32)
	f := randSub(32, 31)
	kernel := green.Gaussian{Sigma: 1.5}
	spatial, err := KernelSpatial(d, kernel, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Baseline(f, kernel, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Direct(f, spatial, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := grid.RelL2(got, want); r > 1e-4 {
		t.Errorf("direct vs FFT error %g", r)
	}
}

func TestDirectDeltaRadiusZero(t *testing.T) {
	d := grid.Cube(8)
	f := randSub(8, 5)
	spatial, err := KernelSpatial(d, green.Delta{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Direct(f, spatial, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := grid.RelL2(got, f); r > 1e-12 {
		t.Errorf("delta radius-0 error %g", r)
	}
}

func TestDirectTruncationErrorGrowsWithSmallerRadius(t *testing.T) {
	d := grid.Cube(16)
	f := randSub(16, 2)
	kernel := green.Gaussian{Sigma: 1.5}
	spatial, err := KernelSpatial(d, kernel, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Baseline(f, kernel, 0)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, radius := range []int{7, 4, 2, 1} {
		got, err := Direct(f, spatial, radius, 0)
		if err != nil {
			t.Fatal(err)
		}
		r, _ := grid.RelL2(got, want)
		if prev >= 0 && r < prev {
			t.Errorf("radius %d: error %g should grow as radius shrinks (prev %g)", radius, r, prev)
		}
		prev = r
	}
}

func TestDirectErrors(t *testing.T) {
	f := grid.NewField(grid.Cube(8))
	k := grid.NewField(grid.Cube(16))
	if _, err := Direct(f, k, 1, 0); err == nil {
		t.Error("dim mismatch should fail")
	}
	k8 := grid.NewField(grid.Cube(8))
	if _, err := Direct(f, k8, 5, 0); err == nil {
		t.Error("radius too large should fail")
	}
	if _, err := Direct(f, k8, -1, 0); err == nil {
		t.Error("negative radius should fail")
	}
}

func BenchmarkDirectVsFFTCrossover(b *testing.B) {
	// The paper's §1 motivation: direct summation vs FFT. At small
	// stencil radii direct wins; the FFT takes over as support grows.
	d := grid.Cube(32)
	f := randSub(32, 1)
	kernel := green.Gaussian{Sigma: 1}
	spatial, err := KernelSpatial(d, kernel, 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, radius := range []int{1, 3, 6} {
		b.Run(fmt.Sprintf("direct/R%d", radius), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Direct(f, spatial, radius, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("fft", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Baseline(f, kernel, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func TestBaselineRealMatchesComplex(t *testing.T) {
	for _, n := range []int{8, 16, 32} {
		f := randSub(n, int64(n))
		kernel := green.Gaussian{Sigma: 1.5}
		want, err := Baseline(f, kernel, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := BaselineReal(f, kernel, 0)
		if err != nil {
			t.Fatal(err)
		}
		if r, _ := grid.RelL2(got, want); r > 1e-12 {
			t.Errorf("n=%d: r2c pipeline differs from complex by %g", n, r)
		}
	}
}

func TestBaselineRealOddFails(t *testing.T) {
	f := grid.NewField(grid.Dim3{Nx: 9, Ny: 8, Nz: 8})
	if _, err := BaselineReal(f, green.Delta{}, 0); err == nil {
		t.Error("odd Nx should fail")
	}
}

func BenchmarkBaselineRealVsComplex(b *testing.B) {
	f := randSub(64, 4)
	kernel := green.Gaussian{Sigma: 2}
	b.Run("complex", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Baseline(f, kernel, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("r2c", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := BaselineReal(f, kernel, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}
