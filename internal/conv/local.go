package conv

import (
	"fmt"
	"time"

	"lowcomm3d/internal/fft"
	"lowcomm3d/internal/green"
	"lowcomm3d/internal/grid"
	"lowcomm3d/internal/obs"
	"lowcomm3d/internal/octree"
	"lowcomm3d/internal/sample"
)

// Pointwise is the frequency-domain callback applied between the forward
// and inverse stages — the role played by cuFFT callback functions in the
// paper's proof of concept (Fig. 4) and by the pointwise sub-plan in its
// FFTX sketch (Fig. 5).
type Pointwise func(kx, ky, kz int, v complex128) complex128

// KernelPointwise adapts a scalar kernel to a Pointwise callback.
// Separable kernels (green.Separable) get a fast path: three per-axis
// tables are precomputed once, so the hot pencil loop multiplies three
// table entries instead of evaluating the transcendental Hat per point.
func KernelPointwise(d grid.Dim3, k green.Kernel) Pointwise {
	if s, ok := k.(green.Separable); ok {
		tx := make([]float64, d.Nx)
		for kx := range tx {
			tx[kx] = s.AxisHat(d.Nx, kx)
		}
		ty := tx
		if d.Ny != d.Nx {
			ty = make([]float64, d.Ny)
			for ky := range ty {
				ty[ky] = s.AxisHat(d.Ny, ky)
			}
		}
		tz := tx
		switch {
		case d.Nz == d.Nx:
		case d.Nz == d.Ny:
			tz = ty
		default:
			tz = make([]float64, d.Nz)
			for kz := range tz {
				tz[kz] = s.AxisHat(d.Nz, kz)
			}
		}
		return func(kx, ky, kz int, v complex128) complex128 {
			return v * complex(tx[kx]*ty[ky]*tz[kz], 0)
		}
	}
	return func(kx, ky, kz int, v complex128) complex128 {
		return v * complex(k.Hat(d, kx, ky, kz), 0)
	}
}

// Config tunes the local pipeline.
type Config struct {
	Workers int  // goroutines for batched pencil stages (≤0: GOMAXPROCS)
	BatchB  int  // pencils per batch, the paper's §5.4 batch parameter (≤0: one batch)
	Pruned  bool // use input-pruned z transforms (transform decomposition)

	// Trace, when non-nil, records per-stage spans ("conv.run",
	// "conv.stageA/B/C"), per-stage latency histograms
	// ("conv.stage_a/b/c_seconds"), per-worker pencil spans, and the
	// counters/gauges behind Stats (conv.pencils, conv.samples,
	// conv.sample_bytes, conv.flops_model, conv.peak_bytes). Nil disables
	// all recording.
	Trace *obs.Trace
}

// Stats reports the footprint and work of one local convolution, the
// quantities behind the paper's Tables 1 and 4.
type Stats struct {
	SlabBytes   int // N×N×k complex slab
	PlanesBytes int // kept inverse planes, N×N×|Z| complex
	SampleBytes int // compressed output (samples + octree metadata)
	PeakBytes   int // max simultaneously-live intermediate footprint
	ModelBytes  int // the paper's 8·N²·k back-of-envelope figure
	KeptZPlanes int
	PencilCount int
	SampleCount int
	Compression float64 // dense result bytes / compressed bytes

	// Per-stage wall time, measured whether or not a Trace is attached, so
	// job timelines can attribute compute latency to stages A/B/C.
	StageA time.Duration // forward 2D slab transforms
	StageB time.Duration // batched 1D z transforms + pointwise
	StageC time.Duration // inverse 2D planes + octree gather
}

// Local performs the paper's domain-local convolution of one k³ sub-domain
// against a full-grid kernel: the dense N³ result is never materialized;
// the output is the octree-compressed sampling of the full-grid circular
// convolution. All transforms are local — no data leaves the worker until
// the compressed samples are exchanged in the accumulation step.
type Local struct {
	dim     grid.Dim3
	sub     grid.Box
	pw      Pointwise
	tree    *octree.Tree
	cfg     Config
	plan2d  *fft.Plan2D
	planZ   *fft.Plan
	prunedZ *fft.PrunedPlan
	prunedX *fft.PrunedPlan
	prunedY *fft.PrunedPlan

	// Sampling index: for each kept z plane, the (x, y, sampleIdx) triples
	// to gather after the inverse 2D transform of that plane.
	zIndex map[int][]gatherPoint
	keptZ  []int
	zSlot  map[int]int

	// Reused working buffers (Run is therefore not safe for concurrent
	// use on one Local; create one Local per goroutine). scratch holds the
	// per-worker pencil/line buffers for stages A and B, allocated once so
	// a warm Run performs no heap allocations.
	slabBuf   []complex128
	planesBuf []complex128
	scratch   []pencilScratch

	// Fixed geometry, cached at construction.
	n, k       int // grid edge, sub-domain edge
	ox, oy, oz int // sub-domain low corner

	// Per-run state read by the prebuilt worker funcs below. The funcs
	// are method values bound once at construction: a closure literal in
	// Run would be heap-allocated per call (its captures escape into
	// ParallelForSpanned), which is exactly what the steady-state serving
	// path cannot afford.
	runIn  *grid.Field    // current job's input sub-field
	bStart int            // current stage-B batch offset
	ec     fft.FirstError // per-run first-error collector
	fnA    func(w, zi int)
	fnB    func(w, i int)

	// Per-stage latency histograms, cached at construction so Run does no
	// registry lookups (nil when cfg.Trace is nil; Observe is nil-safe).
	hA, hB, hC *obs.Histogram
}

type gatherPoint struct {
	x, y   int32
	sample int32
}

// pencilScratch is one worker's reusable line buffers: spec/inv/line are
// full length-n lines, sub/row are k-length gathers.
type pencilScratch struct {
	spec, inv, line []complex128 // length n
	sub, row        []complex128 // length k
}

// NewLocal builds a local-convolution pipeline for sub-domain box sub of
// an N³ grid (dim), with the sampling octree tree (typically from
// sample.Policy) and the frequency-domain callback pw. The transform plans
// are built privately; use PlanSet.NewLocal to share them across pipelines
// of the same shape.
func NewLocal(dim grid.Dim3, sub grid.Box, tree *octree.Tree, pw Pointwise, cfg Config) (*Local, error) {
	s := sub.Size()
	if s[0] != s[1] || s[1] != s[2] {
		return nil, fmt.Errorf("conv: sub-domain %v must be cubic", sub)
	}
	ps, err := NewPlanSet(dim, s[0], cfg.Workers, cfg.Pruned)
	if err != nil {
		return nil, err
	}
	return newLocal(dim, sub, tree, pw, cfg, ps)
}

// newLocal finishes pipeline construction on top of an existing plan set.
func newLocal(dim grid.Dim3, sub grid.Box, tree *octree.Tree, pw Pointwise, cfg Config, ps *PlanSet) (*Local, error) {
	if dim.Nx != dim.Ny || dim.Ny != dim.Nz {
		return nil, fmt.Errorf("conv: grid %v must be cubic", dim)
	}
	if tree.Dim != dim {
		return nil, fmt.Errorf("conv: tree dims %v != grid dims %v", tree.Dim, dim)
	}
	if !dim.Bounds().ContainsBox(sub) {
		return nil, fmt.Errorf("conv: sub-domain %v outside grid %v", sub, dim)
	}
	s := sub.Size()
	if s[0] != s[1] || s[1] != s[2] {
		return nil, fmt.Errorf("conv: sub-domain %v must be cubic", sub)
	}
	n := dim.Nx
	k := s[0]
	l := &Local{dim: dim, sub: sub, pw: pw, tree: tree, cfg: cfg}
	l.plan2d = ps.plan2d
	l.planZ = ps.planZ
	l.prunedZ = ps.prunedZ
	l.prunedX = ps.prunedX
	l.prunedY = ps.prunedY
	workers := fft.Workers(cfg.Workers)
	l.scratch = make([]pencilScratch, workers)
	for w := range l.scratch {
		l.scratch[w] = pencilScratch{
			spec: make([]complex128, n),
			inv:  make([]complex128, n),
			line: make([]complex128, n),
			sub:  make([]complex128, k),
			row:  make([]complex128, k),
		}
	}
	l.n, l.k = n, k
	l.ox, l.oy, l.oz = sub.Lo[0], sub.Lo[1], sub.Lo[2]
	l.fnB = l.pencilWorker
	if cfg.Pruned {
		l.fnA = l.slabPlanePruned
	} else {
		l.fnA = l.slabPlanePadded
	}
	l.buildSampleIndex()
	l.hA = cfg.Trace.Histogram("conv.stage_a_seconds")
	l.hB = cfg.Trace.Histogram("conv.stage_b_seconds")
	l.hC = cfg.Trace.Histogram("conv.stage_c_seconds")
	return l, nil
}

// buildSampleIndex groups the octree's sample points by z plane so the
// inverse stage can gather them directly from each inverse-transformed
// plane — the "compression algorithm applied after each 1D iFFT stage".
func (l *Local) buildSampleIndex() {
	l.zIndex = make(map[int][]gatherPoint)
	l.tree.ForEachSample(func(cell, s, x, y, z int) {
		l.zIndex[z] = append(l.zIndex[z], gatherPoint{x: int32(x), y: int32(y), sample: int32(s)})
	})
	l.keptZ = make([]int, 0, len(l.zIndex))
	for z := range l.zIndex {
		l.keptZ = append(l.keptZ, z)
	}
	// Deterministic order.
	for i := 1; i < len(l.keptZ); i++ {
		for j := i; j > 0 && l.keptZ[j] < l.keptZ[j-1]; j-- {
			l.keptZ[j], l.keptZ[j-1] = l.keptZ[j-1], l.keptZ[j]
		}
	}
	l.zSlot = make(map[int]int, len(l.keptZ))
	for i, z := range l.keptZ {
		l.zSlot[z] = i
	}
}

// Tree returns the sampling octree used by the pipeline.
func (l *Local) Tree() *octree.Tree { return l.tree }

// Run convolves the k³ sub-domain field (dimensions equal to the
// sub-domain box) and returns the compressed result plus footprint stats.
func (l *Local) Run(subField *grid.Field) (*sample.Compressed, Stats, error) {
	return l.RunInto(subField, nil)
}

// RunInto is Run with an optional caller-provided output arena: when out
// was built for this pipeline's tree (same tree, full sample storage), its
// samples are overwritten in place and no output allocation happens — the
// steady-state path of a serving engine recycling result buffers. Any
// other out (nil included) falls back to a fresh allocation.
func (l *Local) RunInto(subField *grid.Field, out *sample.Compressed) (*sample.Compressed, Stats, error) {
	var st Stats
	s := l.sub.Size()
	if (grid.Dim3{Nx: s[0], Ny: s[1], Nz: s[2]}) != subField.Dim {
		return nil, st, fmt.Errorf("conv: sub field %v does not match box %v", subField.Dim, l.sub)
	}
	n, k := l.n, l.k
	l.runIn = subField
	l.ec.Reset()
	run := l.cfg.Trace.Start("conv.run")
	defer run.End()

	// Stage A — forward 2D transforms of the k sub-domain slices into the
	// N×N×k slab ("the small domain undergoes a 2D transform to a slab").
	// The buffer is reused across runs; the padded path needs it zeroed
	// (only the k×k block is written before the full-plane transform).
	tA := time.Now()
	spanA := run.Start("conv.stageA")
	if len(l.slabBuf) != n*n*k {
		l.slabBuf = make([]complex128, n*n*k)
	} else if !l.cfg.Pruned {
		for i := range l.slabBuf {
			l.slabBuf[i] = 0
		}
	}
	if err := l.slabForward(spanA); err != nil {
		spanA.End()
		return nil, st, err
	}
	l.runIn = nil // input is only read in stage A; don't retain it
	spanA.End()
	st.StageA = time.Since(tA)
	l.hA.Observe(st.StageA)
	st.SlabBytes = 16 * n * n * k

	// Stage B — batched 1D z transforms of the N² pencils with the
	// pointwise callback, inverse z transform, keeping only sampled z
	// planes ("the slab is then transformed in a batch fashion by taking
	// 1D transforms of B pencils at a time in the z-dimension").
	tB := time.Now()
	spanB := run.Start("conv.stageB")
	nz := len(l.keptZ)
	if len(l.planesBuf) != n*n*nz {
		l.planesBuf = make([]complex128, n*n*nz)
	}
	planes := l.planesBuf
	st.PlanesBytes = 16 * n * n * nz
	st.KeptZPlanes = nz
	st.PencilCount = n * n
	batch := l.cfg.BatchB
	if batch <= 0 || batch > n*n {
		batch = n * n
	}
	workers := fft.Workers(l.cfg.Workers)
	for start := 0; start < n*n; start += batch {
		end := start + batch
		if end > n*n {
			end = n * n
		}
		l.bStart = start
		fft.ParallelForSpanned(spanB, "conv.stageB.worker", end-start, workers, l.fnB)
		if err := l.ec.Err(); err != nil {
			spanB.End()
			return nil, st, err
		}
	}
	spanB.End()
	st.StageB = time.Since(tB)
	l.hB.Observe(st.StageB)

	// Stage C — inverse 2D transform of each kept plane, then gather the
	// octree samples (the full 3D result is never materialized). Every
	// sample slot is rewritten below, so a recycled output needs no zeroing.
	tC := time.Now()
	spanC := run.Start("conv.stageC")
	if out == nil || out.Tree != l.tree || len(out.Samples) != l.tree.SampleCount() {
		out = sample.NewCompressed(l.tree)
	}
	st.SampleCount = len(out.Samples)
	for slot, z := range l.keptZ {
		plane := planes[slot*n*n : (slot+1)*n*n]
		if err := l.plan2d.InversePlane(plane); err != nil {
			spanC.End()
			return nil, st, err
		}
		for _, g := range l.zIndex[z] {
			out.Samples[g.sample] = real(plane[int(g.y)*n+int(g.x)])
		}
	}

	st.SampleBytes = out.MemoryBytes()
	st.ModelBytes = 8 * n * n * k
	st.PeakBytes = st.SlabBytes + st.PlanesBytes + st.SampleBytes
	st.Compression = out.CompressionRatio()
	spanC.End()
	st.StageC = time.Since(tC)
	l.hC.Observe(st.StageC)
	if tr := l.cfg.Trace; tr != nil {
		tr.Counter("conv.pencils").Add(int64(st.PencilCount))
		tr.Counter("conv.samples").Add(int64(st.SampleCount))
		tr.Counter("conv.sample_bytes").Add(int64(st.SampleBytes))
		// FLOP model: stage A does k 2D plane transforms (n lines per axis),
		// stage B two length-n transforms per pencil, stage C one inverse
		// 2D transform per kept plane.
		perPlane2D := 2 * int64(n) * obs.FFTFlops(n)
		tr.Counter("conv.flops_model").Add(
			int64(k)*perPlane2D +
				int64(st.PencilCount)*2*obs.FFTFlops(n) +
				int64(st.KeptZPlanes)*perPlane2D)
		tr.Gauge("conv.peak_bytes").Max(int64(st.PeakBytes))
	}
	return out, st, nil
}

// slabForward fills the N×N×k slab with 2D transforms of the zero-padded
// sub-domain slices (read from l.runIn), dispatching the prebuilt padded
// or pruned per-plane worker.
func (l *Local) slabForward(parent *obs.Span) error {
	workers := fft.Workers(l.cfg.Workers)
	fft.ParallelForSpanned(parent, "conv.stageA.worker", l.k, workers, l.fnA)
	return l.ec.Err()
}

// slabPlanePadded is the stage-A worker for the dense path: scatter one
// sub-domain slice into its zero plane and 2D-transform it.
func (l *Local) slabPlanePadded(w, zi int) {
	if l.ec.Failed() {
		return
	}
	n, k, ox, oy := l.n, l.k, l.ox, l.oy
	plane := l.slabBuf[zi*n*n : (zi+1)*n*n]
	for yy := 0; yy < k; yy++ {
		for xx := 0; xx < k; xx++ {
			plane[(oy+yy)*n+(ox+xx)] = complex(l.runIn.At(xx, yy, zi), 0)
		}
	}
	if err := l.plan2d.ForwardPlane(plane); err != nil {
		l.ec.Record(err)
	}
}

// slabPlanePruned is the stage-A worker for the input-pruned path: both
// 1D passes skip the implicit zeros (x lines have support k at ox; after
// the x pass, y columns have support k at oy).
func (l *Local) slabPlanePruned(w, zi int) {
	if l.ec.Failed() {
		return
	}
	n, k, ox, oy := l.n, l.k, l.ox, l.oy
	plane := l.slabBuf[zi*n*n : (zi+1)*n*n]
	// Reuse the worker's persistent line buffers (stage A and stage B
	// never overlap, so sharing scratch with the pencil sweep is safe):
	// row/sub are the two k-length gathers, line/spec the n-length lines.
	sc := &l.scratch[w]
	row, col, line, scratch := sc.row, sc.sub, sc.line, sc.spec
	// Pruned x transforms on the k nonzero rows.
	for yy := 0; yy < k; yy++ {
		for xx := 0; xx < k; xx++ {
			row[xx] = complex(l.runIn.At(xx, yy, zi), 0)
		}
		if err := l.prunedX.Forward(line, row, ox, scratch); err != nil {
			l.ec.Record(err)
			return
		}
		copy(plane[(oy+yy)*n:(oy+yy)*n+n], line)
	}
	// Pruned y transforms on every column (support k at oy).
	for xx := 0; xx < n; xx++ {
		for yy := 0; yy < k; yy++ {
			col[yy] = plane[(oy+yy)*n+xx]
		}
		if err := l.prunedY.Forward(line, col, oy, scratch); err != nil {
			l.ec.Record(err)
			return
		}
		for yy := 0; yy < n; yy++ {
			plane[yy*n+xx] = line[yy]
		}
	}
}

// pencilWorker is the stage-B worker: gather one (x, y) pencil's k slab
// values, forward z transform (pruned or padded), pointwise kernel
// multiply, inverse z transform, scatter the kept planes.
func (l *Local) pencilWorker(w, i int) {
	if l.ec.Failed() {
		return
	}
	n := l.n
	p := l.bStart + i
	x := p % n
	y := p / n
	sc := &l.scratch[w]
	// Gather the k nonzero z values of this pencil.
	for zi := 0; zi < l.k; zi++ {
		sc.sub[zi] = l.slabBuf[zi*n*n+p]
	}
	// Forward z transform with implicit zero padding.
	if l.cfg.Pruned {
		if err := l.prunedZ.Forward(sc.spec, sc.sub, l.oz, sc.line); err != nil {
			l.ec.Record(err)
			return
		}
	} else {
		for j := range sc.spec {
			sc.spec[j] = 0
		}
		copy(sc.spec[l.oz:l.oz+l.k], sc.sub)
		if err := l.planZ.Forward(sc.spec, sc.spec); err != nil {
			l.ec.Record(err)
			return
		}
	}
	// Pointwise kernel multiply — the cuFFT-callback stage.
	for kz := 0; kz < n; kz++ {
		sc.spec[kz] = l.pw(x, y, kz, sc.spec[kz])
	}
	// Inverse z transform; scatter only the sampled planes.
	if err := l.planZ.Inverse(sc.inv, sc.spec); err != nil {
		l.ec.Record(err)
		return
	}
	for slot, z := range l.keptZ {
		l.planesBuf[slot*n*n+p] = sc.inv[z]
	}
}
