// Package conv implements the paper's 3D convolution pipelines: the
// traditional full-grid FFT convolution (the baseline every HPC framework
// implements, §2.1) and the proposed low-communication local pipeline
// (§3): per-sub-domain pruned FFT → on-the-fly pointwise kernel multiply →
// inverse transform with octree-adaptive sampling, never materializing the
// padded N³ result, plus the final accumulation step.
package conv

import (
	"fmt"

	"lowcomm3d/internal/fft"
	"lowcomm3d/internal/green"
	"lowcomm3d/internal/grid"
)

// Baseline computes the circular convolution of a real field with a
// frequency-domain kernel the traditional way: full 3D FFT, pointwise
// multiply, full 3D inverse. It materializes the dense N³ complex field —
// the 8·N³-byte footprint of the paper's Table 1 "traditional FFT" column
// (16·N³ for the complex intermediate).
func Baseline(f *grid.Field, k green.Kernel, workers int) (*grid.Field, error) {
	plan, err := fft.NewPlan3D(f.Dim, workers)
	if err != nil {
		return nil, err
	}
	c := grid.FromReal(f)
	if err := plan.Forward(c); err != nil {
		return nil, err
	}
	d := f.Dim
	i := 0
	for kz := 0; kz < d.Nz; kz++ {
		for ky := 0; ky < d.Ny; ky++ {
			for kx := 0; kx < d.Nx; kx++ {
				c.Data[i] *= complex(k.Hat(d, kx, ky, kz), 0)
				i++
			}
		}
	}
	if err := plan.Inverse(c); err != nil {
		return nil, err
	}
	return c.Real(), nil
}

// BaselineSubdomain embeds a k³ sub-domain field at box b inside an
// otherwise-zero dim-sized grid and convolves it with the kernel using the
// traditional full-grid path. It is the exact reference the local pipeline
// is validated against: "performing convolution on each small sub-domain
// (which is embedded in a larger volume of zero values) would yield a full
// grid-sized non-zero result" (§3.2 step 2).
func BaselineSubdomain(dim grid.Dim3, b grid.Box, sub *grid.Field, k green.Kernel, workers int) (*grid.Field, error) {
	s := b.Size()
	if (grid.Dim3{Nx: s[0], Ny: s[1], Nz: s[2]}) != sub.Dim {
		return nil, fmt.Errorf("conv: sub-domain field %v does not match box %v", sub.Dim, b)
	}
	full := grid.NewField(dim)
	if err := full.InsertBox(b, sub); err != nil {
		return nil, err
	}
	return Baseline(full, k, workers)
}
