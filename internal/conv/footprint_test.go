package conv

import (
	"math/rand"
	"sync"
	"testing"

	"lowcomm3d/internal/green"
	"lowcomm3d/internal/grid"
	"lowcomm3d/internal/obs"
	"lowcomm3d/internal/octree"
	"lowcomm3d/internal/sample"
)

// TestDecomposedLazyExtractionFootprint pins the lazy-extraction fix:
// Decomposed.Run must extract sub-fields inside the worker loop, so the
// high-water count of simultaneously-live k³ input copies is bounded by
// the Parallel worker count. The pre-fix code extracted every non-zero
// sub-box up front, which would report a high-water mark equal to the job
// count (64 here).
func TestDecomposedLazyExtractionFootprint(t *testing.T) {
	d := grid.Cube(16)
	f := grid.NewField(d)
	rng := rand.New(rand.NewSource(11))
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64() + 2 // strictly nonzero: no skips
	}
	tr := obs.New()
	for _, workers := range []int{1, 2} {
		dc := Decomposed{
			Kernel: green.Delta{}, SubSize: 4, Parallel: workers,
			Cfg: Config{Trace: tr},
			TreeFor: func(sub grid.Box, dim grid.Dim3) (*octree.Tree, error) {
				return sample.Uniform{Rate: 1, CellSize: 8}.Tree(dim)
			},
		}
		_, ds, err := dc.Run(f)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(ds.PerSub); got != 64 {
			t.Fatalf("Parallel=%d: ran %d sub-domains, want 64", workers, got)
		}
		if ds.MaxLiveSubFields < 1 || ds.MaxLiveSubFields > workers {
			t.Errorf("Parallel=%d: %d sub-fields live at peak, want 1..%d (eager extraction would report 64)",
				workers, ds.MaxLiveSubFields, workers)
		}
	}
	if hw := tr.GaugeValue("conv.live_subfields"); hw < 1 || hw > 2 {
		t.Errorf("conv.live_subfields gauge = %d, want 1..2", hw)
	}
}

// TestSharedTraceConcurrentPipelines runs a Batch and a Decomposed
// pipeline (Parallel > 1, per-pipeline workers > 1) concurrently against
// ONE obs.Trace — the sharing pattern of a serving process where every
// pipeline reports into the process-wide registry. Run under -race (make
// verify) this pins that the trace's counters, gauges, histograms, and
// span recording are safe across concurrent pipelines.
func TestSharedTraceConcurrentPipelines(t *testing.T) {
	tr := obs.New()
	d := grid.Cube(16)
	f := blobField(d, 17)

	var wg sync.WaitGroup
	errs := make(chan error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		dc := Decomposed{
			Kernel: green.Gaussian{Sigma: 1.5}, SubSize: 4, FarRate: 8,
			Parallel: 3, Cfg: Config{Workers: 1, Trace: tr},
		}
		if _, _, err := dc.Run(f); err != nil {
			errs <- err
		}
	}()
	go func() {
		defer wg.Done()
		boxes, err := grid.Decompose(d, 8)
		if err != nil {
			errs <- err
			return
		}
		batch, err := NewBatch(d, boxes, nil, KernelPointwise(d, green.Gaussian{Sigma: 1.5}),
			Config{Pruned: true, Workers: 2, Trace: tr})
		if err != nil {
			errs <- err
			return
		}
		inputs := make([]*grid.Field, len(boxes))
		for i := range inputs {
			inputs[i] = randSub(8, int64(i+1))
		}
		if _, _, err := batch.Run(inputs); err != nil {
			errs <- err
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if tr.CounterValue("conv.pencils") <= 0 {
		t.Error("shared trace recorded no pencils")
	}
	if tr.Histogram("conv.stage_b_seconds").Count() <= 0 {
		t.Error("shared trace recorded no stage-B latencies")
	}
}
