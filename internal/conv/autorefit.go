package conv

import (
	"fmt"

	"lowcomm3d/internal/gpu"
	"lowcomm3d/internal/grid"
)

// RunAutoRefit runs the decomposed convolution at the largest sub-domain
// size whose modeled pipeline footprint fits the device: starting from
// dc.SubSize, the size is halved (never below minK) until the analytic
// memory model's allocation schedule stays within the device ledger, and
// the adaptive solve then runs at the admitted size. This is the
// single-convolution form of the solver's admission control — Table 4's
// capacity planning applied automatically instead of by hand. The chosen
// sub-domain size is returned alongside the result.
func (dc Decomposed) RunAutoRefit(f *grid.Field, d *gpu.Device, minK int) (*grid.Field, DecomposedStats, int, error) {
	if minK < 1 {
		minK = 1
	}
	n := f.Dim.Nx
	r := dc.FarRate
	if r == 0 {
		r = 16
	}
	k := dc.SubSize
	for {
		mb, err := gpu.LocalConvMemory(n, k, r)
		if err != nil {
			return nil, DecomposedStats{}, 0, err
		}
		if ok, _ := mb.FitsOn(d); ok {
			break
		}
		if k/2 < minK {
			return nil, DecomposedStats{}, 0,
				fmt.Errorf("conv: no sub-domain size in [%d, %d] fits device %s: %w",
					minK, dc.SubSize, d.Name, gpu.ErrOutOfMemory)
		}
		k /= 2
	}
	dc.SubSize = k
	out, ds, err := dc.RunAdaptive(f, minK)
	return out, ds, k, err
}
