package conv

import (
	"fmt"

	"lowcomm3d/internal/grid"
	"lowcomm3d/internal/octree"
	"lowcomm3d/internal/sample"
)

// Batch processes several same-sized sub-domains on one worker while
// sharing every FFT plan and twiddle table — the paper's batching claim:
// "given the reduced memory requirement of our method, multiple chunks can
// be batch processed by a single worker" (§3.1, Fig. 2). Trees and sample
// indices stay per-sub-domain (the sampling pattern is centered on each
// box); the transform machinery is built once.
type Batch struct {
	dim    grid.Dim3
	locals []*Local
}

// TreeFactory builds the sampling octree for one sub-domain.
type TreeFactory func(sub grid.Box, dim grid.Dim3) (*octree.Tree, error)

// NewBatch builds a batched pipeline over the given boxes. All boxes must
// be cubes of the same size. treeFor selects each box's octree (nil uses
// sample.DefaultPolicy with far rate 16).
func NewBatch(dim grid.Dim3, boxes []grid.Box, treeFor TreeFactory, pw Pointwise, cfg Config) (*Batch, error) {
	if len(boxes) == 0 {
		return nil, fmt.Errorf("conv: empty batch")
	}
	if treeFor == nil {
		treeFor = func(sub grid.Box, d grid.Dim3) (*octree.Tree, error) {
			return sample.DefaultPolicy(sub, 16).Tree(d)
		}
	}
	k := boxes[0].Hi[0] - boxes[0].Lo[0]
	b := &Batch{dim: dim}
	// Shared plans, built once (PlanSet is the exported form of this
	// construction; internal/serve caches the same sets across jobs).
	ps, err := NewPlanSet(dim, k, cfg.Workers, cfg.Pruned)
	if err != nil {
		return nil, err
	}
	for _, box := range boxes {
		s := box.Size()
		if s[0] != k || s[1] != k || s[2] != k {
			return nil, fmt.Errorf("conv: batch box %v is not a %d-cube", box, k)
		}
		tree, err := treeFor(box, dim)
		if err != nil {
			return nil, err
		}
		local, err := ps.NewLocal(box, tree, pw, cfg)
		if err != nil {
			return nil, err
		}
		b.locals = append(b.locals, local)
	}
	return b, nil
}

// Boxes returns the batch's sub-domain boxes in order.
func (b *Batch) Boxes() []grid.Box {
	out := make([]grid.Box, len(b.locals))
	for i, l := range b.locals {
		out[i] = l.sub
	}
	return out
}

// Run convolves every sub-domain (subFields[i] belongs to Boxes()[i]) and
// returns the compressed results plus aggregate stats.
func (b *Batch) Run(subFields []*grid.Field) ([]*sample.Compressed, Stats, error) {
	var agg Stats
	if len(subFields) != len(b.locals) {
		return nil, agg, fmt.Errorf("conv: %d inputs for %d sub-domains", len(subFields), len(b.locals))
	}
	results := make([]*sample.Compressed, len(b.locals))
	for i, l := range b.locals {
		res, st, err := l.Run(subFields[i])
		if err != nil {
			return nil, agg, fmt.Errorf("conv: batch sub-domain %d: %w", i, err)
		}
		results[i] = res
		agg.SampleCount += st.SampleCount
		agg.SampleBytes += st.SampleBytes
		agg.PencilCount += st.PencilCount
		if st.PeakBytes > agg.PeakBytes {
			agg.PeakBytes = st.PeakBytes
		}
		agg.SlabBytes = st.SlabBytes
		agg.ModelBytes = st.ModelBytes
		agg.KeptZPlanes = st.KeptZPlanes
	}
	if len(b.locals) > 0 {
		agg.Compression = float64(8*b.dim.Len()*len(b.locals)) / float64(agg.SampleBytes)
	}
	return results, agg, nil
}
