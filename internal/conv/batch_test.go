package conv

import (
	"math"
	"testing"

	"lowcomm3d/internal/green"
	"lowcomm3d/internal/grid"
	"lowcomm3d/internal/octree"
	"lowcomm3d/internal/sample"
)

func TestBatchMatchesIndividualLocals(t *testing.T) {
	n, k := 32, 8
	dim := grid.Cube(n)
	boxes, err := grid.Decompose(dim, k)
	if err != nil {
		t.Fatal(err)
	}
	boxes = boxes[:6]
	kernel := green.Gaussian{Sigma: 1.5}
	pw := KernelPointwise(dim, kernel)
	cfg := Config{Pruned: true}
	batch, err := NewBatch(dim, boxes, nil, pw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]*grid.Field, len(boxes))
	for i := range inputs {
		inputs[i] = randSub(k, int64(i+1))
	}
	got, st, err := batch.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if st.SampleCount <= 0 || st.Compression <= 0 {
		t.Errorf("bad aggregate stats: %+v", st)
	}
	for i, box := range boxes {
		tree, err := sample.DefaultPolicy(box, 16).Tree(dim)
		if err != nil {
			t.Fatal(err)
		}
		local, err := NewLocal(dim, box, tree, pw, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := local.Run(inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		for s := range want.Samples {
			if math.Abs(got[i].Samples[s]-want.Samples[s]) > 1e-12 {
				t.Fatalf("box %d sample %d: batch %g individual %g",
					i, s, got[i].Samples[s], want.Samples[s])
			}
		}
	}
}

func TestBatchCustomTreeFactory(t *testing.T) {
	dim := grid.Cube(16)
	boxes, err := grid.Decompose(dim, 8)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	factory := func(sub grid.Box, d grid.Dim3) (*octree.Tree, error) {
		calls++
		return sample.Uniform{Rate: 1, CellSize: 8}.Tree(d)
	}
	batch, err := NewBatch(dim, boxes, factory, KernelPointwise(dim, green.Delta{}), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if calls != len(boxes) {
		t.Errorf("factory called %d times for %d boxes", calls, len(boxes))
	}
	if got := len(batch.Boxes()); got != len(boxes) {
		t.Errorf("Boxes() = %d", got)
	}
}

func TestBatchErrors(t *testing.T) {
	dim := grid.Cube(16)
	pw := KernelPointwise(dim, green.Delta{})
	if _, err := NewBatch(dim, nil, nil, pw, Config{}); err == nil {
		t.Error("empty batch should fail")
	}
	mixed := []grid.Box{
		grid.CubeAt(grid.Point{0, 0, 0}, 8),
		grid.CubeAt(grid.Point{8, 8, 8}, 4),
	}
	if _, err := NewBatch(dim, mixed, nil, pw, Config{}); err == nil {
		t.Error("mixed box sizes should fail")
	}
	boxes := []grid.Box{grid.CubeAt(grid.Point{0, 0, 0}, 8)}
	b, err := NewBatch(dim, boxes, nil, pw, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Run(nil); err == nil {
		t.Error("wrong input count should fail")
	}
}

func BenchmarkBatchVsIndividualSetup(b *testing.B) {
	// Amortized plan construction: building one Batch for 8 sub-domains
	// vs 8 independent Locals.
	n, k := 64, 16
	dim := grid.Cube(n)
	boxes, err := grid.Decompose(dim, k)
	if err != nil {
		b.Fatal(err)
	}
	boxes = boxes[:8]
	pw := KernelPointwise(dim, green.Gaussian{Sigma: 2})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := NewBatch(dim, boxes, nil, pw, Config{Pruned: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("individual", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, box := range boxes {
				tree, err := sample.DefaultPolicy(box, 16).Tree(dim)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := NewLocal(dim, box, tree, pw, Config{Pruned: true}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
