package conv

import (
	"fmt"

	"lowcomm3d/internal/fft"
	"lowcomm3d/internal/green"
	"lowcomm3d/internal/grid"
)

// BaselineReal computes the same convolution as Baseline through a
// real-to-complex pipeline: the x-direction transforms store only the
// n/2+1 independent coefficients (Hermitian symmetry), so the complex
// working set is (N/2+1)·N² instead of N³ — the r2c memory halving real
// FFT codes (FFTW, cuFFT) rely on, applied end to end.
func BaselineReal(f *grid.Field, k green.Kernel, workers int) (*grid.Field, error) {
	d := f.Dim
	n := d.Nx
	if n%2 != 0 {
		return nil, fmt.Errorf("conv: real pipeline requires even Nx, got %d", n)
	}
	rp, err := fft.NewRealPlan(n)
	if err != nil {
		return nil, err
	}
	py, err := fft.NewPlan(d.Ny)
	if err != nil {
		return nil, err
	}
	pz := py
	if d.Nz != d.Ny {
		if pz, err = fft.NewPlan(d.Nz); err != nil {
			return nil, err
		}
	}
	hx := rp.SpectrumLen()
	w := fft.Workers(workers)
	buf := make([]complex128, hx*d.Ny*d.Nz)
	var ec fft.FirstError

	// Forward x: one r2c per (y, z) line.
	fft.ParallelFor(d.Ny*d.Nz, w, func(_, i int) {
		if ec.Failed() {
			return
		}
		y := i % d.Ny
		z := i / d.Ny
		line := make([]float64, n)
		for x := 0; x < n; x++ {
			line[x] = f.At(x, y, z)
		}
		ec.Record(rp.Forward(buf[i*hx:(i+1)*hx:(i+1)*hx], line))
	})
	if err := ec.Err(); err != nil {
		return nil, err
	}
	scratch := make([][]complex128, w)
	for i := range scratch {
		scratch[i] = make([]complex128, max(d.Ny, d.Nz))
	}
	// Forward y: stride hx, one line per (kx, z).
	fft.ParallelFor(hx*d.Nz, w, func(wk, i int) {
		if ec.Failed() {
			return
		}
		kx := i % hx
		z := i / hx
		off := kx + hx*d.Ny*z
		ec.Record(py.ForwardStrided(buf, off, hx, scratch[wk]))
	})
	if err := ec.Err(); err != nil {
		return nil, err
	}
	// Forward z: stride hx·Ny, one line per (kx, ky).
	fft.ParallelFor(hx*d.Ny, w, func(wk, i int) {
		if ec.Failed() {
			return
		}
		ec.Record(pz.ForwardStrided(buf, i, hx*d.Ny, scratch[wk]))
	})
	if err := ec.Err(); err != nil {
		return nil, err
	}

	// Pointwise multiply on the half grid.
	i := 0
	for kz := 0; kz < d.Nz; kz++ {
		for ky := 0; ky < d.Ny; ky++ {
			for kx := 0; kx < hx; kx++ {
				buf[i] *= complex(k.Hat(d, kx, ky, kz), 0)
				i++
			}
		}
	}

	// Inverse z, y, then c2r along x.
	fft.ParallelFor(hx*d.Ny, w, func(wk, i int) {
		if ec.Failed() {
			return
		}
		ec.Record(pz.InverseStrided(buf, i, hx*d.Ny, scratch[wk]))
	})
	if err := ec.Err(); err != nil {
		return nil, err
	}
	fft.ParallelFor(hx*d.Nz, w, func(wk, i int) {
		if ec.Failed() {
			return
		}
		kx := i % hx
		z := i / hx
		ec.Record(py.InverseStrided(buf, kx+hx*d.Ny*z, hx, scratch[wk]))
	})
	if err := ec.Err(); err != nil {
		return nil, err
	}
	out := grid.NewField(d)
	fft.ParallelFor(d.Ny*d.Nz, w, func(_, i int) {
		if ec.Failed() {
			return
		}
		y := i % d.Ny
		z := i / d.Ny
		line := make([]float64, n)
		if err := rp.Inverse(line, buf[i*hx:(i+1)*hx]); err != nil {
			ec.Record(err)
			return
		}
		for x := 0; x < n; x++ {
			out.Set(x, y, z, line[x])
		}
	})
	if err := ec.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
