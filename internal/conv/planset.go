package conv

import (
	"fmt"

	"lowcomm3d/internal/fft"
	"lowcomm3d/internal/grid"
	"lowcomm3d/internal/octree"
)

// PlanSet is the immutable transform machinery shared by every local
// pipeline of one shape (dim, k, pruned, workers): the 2D plane plan, the
// 1D z plan, and (when pruned) the three input-pruned plans. Building it
// is the expensive part of NewLocal — twiddle tables, bit-reversal
// permutations, Bluestein chirps — and it is entirely read-only after
// construction, so one PlanSet can back any number of Locals running
// concurrently. conv.Batch shares one across its sub-domains; the serving
// engine (internal/serve) caches them across jobs.
type PlanSet struct {
	dim     grid.Dim3
	k       int
	pruned  bool
	workers int
	plan2d  *fft.Plan2D
	planZ   *fft.Plan
	prunedZ *fft.PrunedPlan
	prunedX *fft.PrunedPlan
	prunedY *fft.PrunedPlan
}

// NewPlanSet builds the shared plans for k³ sub-domains of an N³ grid.
// workers is normalized through fft.Workers, so two Configs that resolve
// to the same effective worker count share a set.
func NewPlanSet(dim grid.Dim3, k, workers int, pruned bool) (*PlanSet, error) {
	if k < 1 {
		return nil, fmt.Errorf("conv: plan-set sub-domain size %d must be ≥ 1", k)
	}
	ps := &PlanSet{dim: dim, k: k, pruned: pruned, workers: fft.Workers(workers)}
	var err error
	if ps.plan2d, err = fft.NewPlan2D(dim.Nx, dim.Ny, workers); err != nil {
		return nil, err
	}
	if ps.planZ, err = fft.NewPlan(dim.Nz); err != nil {
		return nil, err
	}
	if pruned {
		if ps.prunedZ, err = fft.NewPrunedPlan(dim.Nz, k); err != nil {
			return nil, err
		}
		if ps.prunedX, err = fft.NewPrunedPlan(dim.Nx, k); err != nil {
			return nil, err
		}
		if ps.prunedY, err = fft.NewPrunedPlan(dim.Ny, k); err != nil {
			return nil, err
		}
	}
	return ps, nil
}

// Dim returns the full-grid dimensions the set was planned for.
func (ps *PlanSet) Dim() grid.Dim3 { return ps.dim }

// K returns the sub-domain edge the set was planned for.
func (ps *PlanSet) K() int { return ps.k }

// Pruned reports whether the set carries input-pruned plans.
func (ps *PlanSet) Pruned() bool { return ps.pruned }

// NewLocal builds a pipeline for one sub-domain box on top of the shared
// plans. cfg must agree with the set: same effective worker count and the
// same Pruned flag, and the box must be a k-cube of the planned size.
func (ps *PlanSet) NewLocal(sub grid.Box, tree *octree.Tree, pw Pointwise, cfg Config) (*Local, error) {
	s := sub.Size()
	if s[0] != ps.k || s[1] != ps.k || s[2] != ps.k {
		return nil, fmt.Errorf("conv: box %v is not a %d-cube of the plan set", sub, ps.k)
	}
	if cfg.Pruned != ps.pruned {
		return nil, fmt.Errorf("conv: cfg.Pruned=%v does not match plan set (pruned=%v)", cfg.Pruned, ps.pruned)
	}
	if fft.Workers(cfg.Workers) != ps.workers {
		return nil, fmt.Errorf("conv: cfg workers %d do not match plan set workers %d",
			fft.Workers(cfg.Workers), ps.workers)
	}
	return newLocal(ps.dim, sub, tree, pw, cfg, ps)
}
