package conv

import (
	"math/rand"
	"testing"

	"lowcomm3d/internal/green"
	"lowcomm3d/internal/grid"
)

func randField(d grid.Dim3, seed int64) *grid.Field {
	rng := rand.New(rand.NewSource(seed))
	f := grid.NewField(d)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	return f
}

func TestBaselineRealNonCubic(t *testing.T) {
	// The r2c pipeline only requires even Nx; Ny and Nz may differ (the
	// Nz≠Ny branch builds a second complex plan) and may be odd or 1.
	kernel := green.Gaussian{Sigma: 1.5}
	for _, tc := range []struct {
		name    string
		dim     grid.Dim3
		workers int
	}{
		{"ny-ne-nz", grid.Dim3{Nx: 8, Ny: 4, Nz: 16}, 0},
		{"slab-x-long", grid.Dim3{Nx: 16, Ny: 8, Nz: 4}, 0},
		{"odd-y-odd-z", grid.Dim3{Nx: 8, Ny: 7, Nz: 5}, 0},
		{"degenerate-planes", grid.Dim3{Nx: 4, Ny: 1, Nz: 6}, 0},
		{"parallel-workers", grid.Dim3{Nx: 8, Ny: 6, Nz: 10}, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := randField(tc.dim, int64(tc.dim.Nx*100+tc.dim.Ny*10+tc.dim.Nz))
			want, err := Baseline(f, kernel, tc.workers)
			if err != nil {
				t.Fatal(err)
			}
			got, err := BaselineReal(f, kernel, tc.workers)
			if err != nil {
				t.Fatal(err)
			}
			if r, _ := grid.RelL2(got, want); r > 1e-12 {
				t.Errorf("dim %v: r2c differs from complex by %g", tc.dim, r)
			}
		})
	}
}

func TestBaselineRealDeltaIdentity(t *testing.T) {
	// Convolving with the delta kernel through the half-spectrum pipeline
	// must return the input unchanged — the Hermitian packing round-trips.
	for _, d := range []grid.Dim3{
		{Nx: 8, Ny: 8, Nz: 8},
		{Nx: 8, Ny: 5, Nz: 3},
	} {
		f := randField(d, 42)
		out, err := BaselineReal(f, green.Delta{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if r, _ := grid.RelL2(out, f); r > 1e-12 {
			t.Errorf("dim %v: delta identity error %g", d, r)
		}
	}
}
