package conv

import (
	"testing"

	"lowcomm3d/internal/green"
	"lowcomm3d/internal/grid"
	"lowcomm3d/internal/octree"
	"lowcomm3d/internal/sample"
)

// TestAccumulateBoundarySubdomains accumulates rate-1 (exact) results from
// sub-domains placed against the grid boundary: their convolution results
// wrap periodically, so the high-corner placements exercise the torus
// wrapping in the sample interpolation, not just interior adds.
func TestAccumulateBoundarySubdomains(t *testing.T) {
	n, k := 16, 4
	dim := grid.Cube(n)
	kernel := green.Gaussian{Sigma: 1.2}
	for _, tc := range []struct {
		name string
		los  []grid.Point
	}{
		{"high-corner", []grid.Point{{n - k, n - k, n - k}}},
		{"low-and-high-corner", []grid.Point{{0, 0, 0}, {n - k, n - k, n - k}}},
		{"mixed-faces", []grid.Point{{n - k, 0, n - k}, {0, n - k, 0}}},
		{"adjacent-at-seam", []grid.Point{{n - k, n - k, 0}, {0, n - k, 0}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var results []*sample.Compressed
			want := grid.NewField(dim)
			for i, lo := range tc.los {
				sub := grid.CubeAt(lo, k)
				tree, err := sample.Uniform{Rate: 1, CellSize: 8}.Tree(dim)
				if err != nil {
					t.Fatal(err)
				}
				local, err := NewLocal(dim, sub, tree, KernelPointwise(dim, kernel),
					Config{Pruned: true})
				if err != nil {
					t.Fatal(err)
				}
				subField := randSub(k, int64(100+i))
				res, _, err := local.Run(subField)
				if err != nil {
					t.Fatal(err)
				}
				results = append(results, res)
				ref, err := BaselineSubdomain(dim, sub, subField, kernel, 0)
				if err != nil {
					t.Fatal(err)
				}
				if err := want.AddScaled(1, ref); err != nil {
					t.Fatal(err)
				}
			}
			got, err := Accumulate(dim, results)
			if err != nil {
				t.Fatal(err)
			}
			if r, _ := grid.RelL2(got, want); r > 1e-10 {
				t.Errorf("boundary accumulation error %g", r)
			}
		})
	}
}

// TestAccumulateSingleCellRateOneTree runs the pipeline with the most
// degenerate octree possible — one root cell at rate 1 spanning the whole
// grid — and checks the accumulated result is still the exact convolution.
// This is the tree shape DecodeMeta produces for a 1-cell metadata block,
// so it must work end to end, not just validate.
func TestAccumulateSingleCellRateOneTree(t *testing.T) {
	n, k := 16, 4
	dim := grid.Cube(n)
	tree, err := octree.Build(dim, func(grid.Box) int { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Cells) != 1 {
		t.Fatalf("constant rate function should give one root cell, got %d", len(tree.Cells))
	}
	kernel := green.Gaussian{Sigma: 1.2}
	sub := grid.CubeAt(grid.Point{n - k, 2, n - k}, k) // straddles the wrap in x and z
	local, err := NewLocal(dim, sub, tree, KernelPointwise(dim, kernel), Config{Pruned: true})
	if err != nil {
		t.Fatal(err)
	}
	subField := randSub(k, 7)
	res, st, err := local.Run(subField)
	if err != nil {
		t.Fatal(err)
	}
	if st.SampleCount != res.Tree.SampleCount() {
		t.Errorf("stats report %d samples, tree has %d", st.SampleCount, res.Tree.SampleCount())
	}
	got, err := Accumulate(dim, []*sample.Compressed{res})
	if err != nil {
		t.Fatal(err)
	}
	want, err := BaselineSubdomain(dim, sub, subField, kernel, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := grid.RelL2(got, want); r > 1e-10 {
		t.Errorf("single-cell rate-1 tree accumulation error %g", r)
	}
}
