package conv

import (
	"fmt"

	"lowcomm3d/internal/fft"
	"lowcomm3d/internal/green"
	"lowcomm3d/internal/grid"
)

// KernelSpatial materializes the spatial form of a frequency-domain kernel
// (inverse FFT of its spectrum) — the g(x) the input is convolved with.
func KernelSpatial(d grid.Dim3, k green.Kernel, workers int) (*grid.Field, error) {
	plan, err := fft.NewPlan3D(d, workers)
	if err != nil {
		return nil, err
	}
	c := grid.NewComplexField(d)
	i := 0
	for kz := 0; kz < d.Nz; kz++ {
		for ky := 0; ky < d.Ny; ky++ {
			for kx := 0; kx < d.Nx; kx++ {
				c.Data[i] = complex(k.Hat(d, kx, ky, kz), 0)
				i++
			}
		}
	}
	if err := plan.Inverse(c); err != nil {
		return nil, err
	}
	return c.Real(), nil
}

// Direct computes the circular convolution in the space domain with the
// kernel truncated to Chebyshev radius R around the origin:
//
//	out(x) = Σ_{|δ|∞ ≤ R} g(δ) · f(x − δ)   (periodic indices)
//
// This is the O(N³·(2R+1)³) summation the FFT replaces (paper §1: "the FFT
// reduces the complexity of computation from O(N²) to O(N log N)"). It is
// exact when the kernel's support fits inside the radius, which the
// rapidly-decaying Green's-function kernels of the paper satisfy — making
// Direct both an FFT-free correctness cross-check and the slow side of the
// complexity-crossover benchmark.
func Direct(f *grid.Field, kernel *grid.Field, radius, workers int) (*grid.Field, error) {
	d := f.Dim
	if kernel.Dim != d {
		return nil, fmt.Errorf("conv: kernel dims %v != field dims %v", kernel.Dim, d)
	}
	if radius < 0 || 2*radius+1 > d.Nx || 2*radius+1 > d.Ny || 2*radius+1 > d.Nz {
		return nil, fmt.Errorf("conv: radius %d out of range for %v", radius, d)
	}
	// Gather the truncated stencil once: offsets and weights.
	type tap struct {
		dx, dy, dz int
		w          float64
	}
	taps := make([]tap, 0, (2*radius+1)*(2*radius+1)*(2*radius+1))
	wrap := func(v, n int) int { return ((v % n) + n) % n }
	for dz := -radius; dz <= radius; dz++ {
		for dy := -radius; dy <= radius; dy++ {
			for dx := -radius; dx <= radius; dx++ {
				w := kernel.At(wrap(dx, d.Nx), wrap(dy, d.Ny), wrap(dz, d.Nz))
				if w != 0 {
					taps = append(taps, tap{dx, dy, dz, w})
				}
			}
		}
	}
	out := grid.NewField(d)
	fft.ParallelFor(d.Nz, fft.Workers(workers), func(_, z int) {
		for y := 0; y < d.Ny; y++ {
			for x := 0; x < d.Nx; x++ {
				sum := 0.0
				for _, t := range taps {
					sum += t.w * f.At(wrap(x-t.dx, d.Nx), wrap(y-t.dy, d.Ny), wrap(z-t.dz, d.Nz))
				}
				out.Set(x, y, z, sum)
			}
		}
	})
	return out, nil
}
