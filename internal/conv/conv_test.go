package conv

import (
	"math"
	"math/rand"
	"testing"

	"lowcomm3d/internal/green"
	"lowcomm3d/internal/grid"
	"lowcomm3d/internal/octree"
	"lowcomm3d/internal/sample"
)

func randSub(k int, seed int64) *grid.Field {
	rng := rand.New(rand.NewSource(seed))
	f := grid.NewField(grid.Cube(k))
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	return f
}

// lowFreqSub builds a smooth sub-domain field: a few random Fourier modes
// with at most maxCycles oscillations across the cube, standing in for the
// piecewise-smooth stress fields of the MASSIF use case. Sampling-based
// compression targets exactly this class of data (white noise is beyond
// any sampler's reach).
func lowFreqSub(k int, maxCycles float64, seed int64) *grid.Field {
	rng := rand.New(rand.NewSource(seed))
	f := grid.NewField(grid.Cube(k))
	type mode struct{ ax, ay, az, ph, amp float64 }
	ms := make([]mode, 5)
	for i := range ms {
		ms[i] = mode{
			ax: rng.Float64() * maxCycles, ay: rng.Float64() * maxCycles,
			az: rng.Float64() * maxCycles, ph: rng.Float64() * 2 * math.Pi,
			amp: rng.NormFloat64(),
		}
	}
	for z := 0; z < k; z++ {
		for y := 0; y < k; y++ {
			for x := 0; x < k; x++ {
				v := 0.0
				for _, m := range ms {
					v += m.amp * math.Sin(2*math.Pi*(m.ax*float64(x)+m.ay*float64(y)+m.az*float64(z))/float64(k)+m.ph)
				}
				f.Set(x, y, z, v)
			}
		}
	}
	return f
}

// blobField builds a full-grid field of a few compact Gaussian blobs —
// localized sources whose convolution results decay, the setting the
// decomposed accumulation is designed for.
func blobField(d grid.Dim3, seed int64) *grid.Field {
	rng := rand.New(rand.NewSource(seed))
	f := grid.NewField(d)
	for b := 0; b < 4; b++ {
		cx, cy, cz := rng.Intn(d.Nx), rng.Intn(d.Ny), rng.Intn(d.Nz)
		amp := rng.NormFloat64()
		for z := 0; z < d.Nz; z++ {
			for y := 0; y < d.Ny; y++ {
				for x := 0; x < d.Nx; x++ {
					dx, dy, dz := float64(x-cx), float64(y-cy), float64(z-cz)
					f.Add(x, y, z, amp*math.Exp(-(dx*dx+dy*dy+dz*dz)/18))
				}
			}
		}
	}
	return f
}

func TestBaselineDeltaIsIdentity(t *testing.T) {
	d := grid.Cube(16)
	f := grid.NewField(d)
	rng := rand.New(rand.NewSource(1))
	for i := range f.Data {
		f.Data[i] = rng.Float64()
	}
	out, err := Baseline(f, green.Delta{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := grid.RelL2(out, f); r > 1e-12 {
		t.Errorf("delta convolution error %g", r)
	}
}

func TestBaselineLinearity(t *testing.T) {
	d := grid.Cube(8)
	f1 := grid.NewField(d)
	f2 := grid.NewField(d)
	rng := rand.New(rand.NewSource(2))
	for i := range f1.Data {
		f1.Data[i] = rng.NormFloat64()
		f2.Data[i] = rng.NormFloat64()
	}
	k := green.Gaussian{Sigma: 1}
	o1, err := Baseline(f1, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := Baseline(f2, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	sum := f1.Clone()
	if err := sum.AddScaled(1, f2); err != nil {
		t.Fatal(err)
	}
	oSum, err := Baseline(sum, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := o1.Clone()
	if err := want.AddScaled(1, o2); err != nil {
		t.Fatal(err)
	}
	if r, _ := grid.RelL2(oSum, want); r > 1e-11 {
		t.Errorf("linearity error %g", r)
	}
}

func TestBaselineSubdomainSizeMismatch(t *testing.T) {
	_, err := BaselineSubdomain(grid.Cube(16), grid.CubeAt(grid.Point{0, 0, 0}, 4),
		grid.NewField(grid.Cube(8)), green.Delta{}, 0)
	if err == nil {
		t.Error("size mismatch should fail")
	}
}

// rateOneTree builds a full-resolution octree so the local pipeline's
// output is an exact (sampling-free) representation.

func TestLocalExactAtFullResolution(t *testing.T) {
	// With a rate-1 octree the local pipeline must reproduce the
	// traditional full-grid convolution exactly (DESIGN.md §6 identity).
	n, k := 32, 8
	dim := grid.Cube(n)
	kernel := green.Gaussian{Sigma: 1.5}
	for _, tc := range []struct {
		name   string
		lo     grid.Point
		pruned bool
	}{
		{"corner-padded", grid.Point{0, 0, 0}, false},
		{"corner-pruned", grid.Point{0, 0, 0}, true},
		{"offset-padded", grid.Point{8, 16, 8}, false},
		{"offset-pruned", grid.Point{8, 16, 8}, true},
		{"unaligned-pruned", grid.Point{5, 9, 17}, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sub := grid.CubeAt(tc.lo, k)
			tree, err := sample.Uniform{Rate: 1, CellSize: 8}.Tree(dim)
			if err != nil {
				t.Fatal(err)
			}
			local, err := NewLocal(dim, sub, tree, KernelPointwise(dim, kernel),
				Config{Pruned: tc.pruned})
			if err != nil {
				t.Fatal(err)
			}
			subField := randSub(k, 77)
			got, _, err := local.Run(subField)
			if err != nil {
				t.Fatal(err)
			}
			dense, err := got.Reconstruct()
			if err != nil {
				t.Fatal(err)
			}
			want, err := BaselineSubdomain(dim, sub, subField, kernel, 0)
			if err != nil {
				t.Fatal(err)
			}
			r, _ := grid.RelL2(dense, want)
			if r > 1e-10 {
				t.Errorf("full-resolution mismatch: relL2 = %g", r)
			}
		})
	}
}

func TestLocalSamplesMatchBaselineSamples(t *testing.T) {
	// Stronger than reconstruction error: the pipeline's samples must
	// equal the corresponding values of the dense baseline result, i.e.
	// the compression is exact at the sample points.
	n, k := 32, 8
	dim := grid.Cube(n)
	sub := grid.CubeAt(grid.Point{8, 8, 8}, k)
	kernel := green.Gaussian{Sigma: 1.2}
	tree, err := sample.DefaultPolicy(sub, 8).Tree(dim)
	if err != nil {
		t.Fatal(err)
	}
	local, err := NewLocal(dim, sub, tree, KernelPointwise(dim, kernel), Config{Pruned: true})
	if err != nil {
		t.Fatal(err)
	}
	subField := randSub(k, 3)
	got, _, err := local.Run(subField)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := BaselineSubdomain(dim, sub, subField, kernel, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sample.Compress(dense, tree)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Samples {
		if math.Abs(got.Samples[i]-want.Samples[i]) > 1e-10 {
			t.Fatalf("sample %d: pipeline %g baseline %g", i, got.Samples[i], want.Samples[i])
		}
	}
}

func TestLocalAdaptiveErrorWithinTolerance(t *testing.T) {
	// The paper's §5.3 headline: approximation error ≤ 3% for the
	// decaying Green's-function-like kernel with the §5.4 rate policy.
	n, k := 64, 16
	dim := grid.Cube(n)
	sub := grid.CubeAt(grid.Point{24, 24, 24}, k)
	kernel := green.Gaussian{Sigma: 2}
	tree, err := sample.DefaultPolicy(sub, 16).Tree(dim)
	if err != nil {
		t.Fatal(err)
	}
	local, err := NewLocal(dim, sub, tree, KernelPointwise(dim, kernel), Config{Pruned: true})
	if err != nil {
		t.Fatal(err)
	}
	subField := lowFreqSub(k, 1, 11)
	got, st, err := local.Run(subField)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := got.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	want, err := BaselineSubdomain(dim, sub, subField, kernel, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := grid.RelL2(dense, want)
	if r > 0.03 {
		t.Errorf("approximation error %g > 3%%", r)
	}
	if st.Compression <= 1 {
		t.Errorf("compression ratio %.2f must exceed 1", st.Compression)
	}
}

func TestLocalPrunedMatchesPadded(t *testing.T) {
	n, k := 32, 8
	dim := grid.Cube(n)
	sub := grid.CubeAt(grid.Point{8, 8, 8}, k)
	kernel := green.Gaussian{Sigma: 1.5}
	tree, err := sample.DefaultPolicy(sub, 8).Tree(dim)
	if err != nil {
		t.Fatal(err)
	}
	subField := randSub(k, 5)
	var outs [2]*sample.Compressed
	for i, pruned := range []bool{false, true} {
		local, err := NewLocal(dim, sub, tree, KernelPointwise(dim, kernel), Config{Pruned: pruned})
		if err != nil {
			t.Fatal(err)
		}
		outs[i], _, err = local.Run(subField)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := range outs[0].Samples {
		if math.Abs(outs[0].Samples[i]-outs[1].Samples[i]) > 1e-10 {
			t.Fatalf("pruned/padded diverge at sample %d", i)
		}
	}
}

func TestLocalBatchSizeInvariance(t *testing.T) {
	n, k := 32, 8
	dim := grid.Cube(n)
	sub := grid.CubeAt(grid.Point{16, 8, 0}, k)
	kernel := green.Gaussian{Sigma: 1}
	tree, err := sample.DefaultPolicy(sub, 8).Tree(dim)
	if err != nil {
		t.Fatal(err)
	}
	subField := randSub(k, 9)
	var ref []float64
	for _, b := range []int{0, 64, 1024, 7} {
		local, err := NewLocal(dim, sub, tree, KernelPointwise(dim, kernel),
			Config{BatchB: b, Pruned: true})
		if err != nil {
			t.Fatal(err)
		}
		out, _, err := local.Run(subField)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = out.Samples
			continue
		}
		for i := range ref {
			if math.Abs(ref[i]-out.Samples[i]) > 1e-12 {
				t.Fatalf("batch %d changes sample %d", b, i)
			}
		}
	}
}

func TestLocalStats(t *testing.T) {
	n, k := 32, 8
	dim := grid.Cube(n)
	sub := grid.CubeAt(grid.Point{8, 8, 8}, k)
	tree, err := sample.DefaultPolicy(sub, 16).Tree(dim)
	if err != nil {
		t.Fatal(err)
	}
	local, err := NewLocal(dim, sub, tree, KernelPointwise(dim, green.Gaussian{Sigma: 1}), Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := local.Run(randSub(k, 2))
	if err != nil {
		t.Fatal(err)
	}
	if st.SlabBytes != 16*n*n*k {
		t.Errorf("slab bytes %d want %d", st.SlabBytes, 16*n*n*k)
	}
	if st.ModelBytes != 8*n*n*k {
		t.Errorf("model bytes %d want %d", st.ModelBytes, 8*n*n*k)
	}
	if st.PencilCount != n*n {
		t.Errorf("pencils %d", st.PencilCount)
	}
	if st.KeptZPlanes <= 0 || st.KeptZPlanes > n {
		t.Errorf("kept planes %d", st.KeptZPlanes)
	}
	if st.PeakBytes < st.SlabBytes {
		t.Errorf("peak %d < slab %d", st.PeakBytes, st.SlabBytes)
	}
	if st.SampleCount != tree.SampleCount() {
		t.Errorf("samples %d want %d", st.SampleCount, tree.SampleCount())
	}
}

func TestNewLocalErrors(t *testing.T) {
	dim := grid.Cube(16)
	tree, err := sample.Uniform{Rate: 2}.Tree(dim)
	if err != nil {
		t.Fatal(err)
	}
	pw := KernelPointwise(dim, green.Delta{})
	if _, err := NewLocal(grid.Dim3{Nx: 16, Ny: 16, Nz: 8}, grid.CubeAt(grid.Point{0, 0, 0}, 4), tree, pw, Config{}); err == nil {
		t.Error("non-cubic grid should fail")
	}
	if _, err := NewLocal(dim, grid.CubeAt(grid.Point{14, 0, 0}, 4), tree, pw, Config{}); err == nil {
		t.Error("sub-domain outside grid should fail")
	}
	if _, err := NewLocal(dim, grid.BoxAt(grid.Point{0, 0, 0}, 4, 4, 2), tree, pw, Config{}); err == nil {
		t.Error("non-cubic sub-domain should fail")
	}
	otherTree, err := sample.Uniform{Rate: 2}.Tree(grid.Cube(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLocal(dim, grid.CubeAt(grid.Point{0, 0, 0}, 4), otherTree, pw, Config{}); err == nil {
		t.Error("tree dim mismatch should fail")
	}
	local, err := NewLocal(dim, grid.CubeAt(grid.Point{0, 0, 0}, 4), tree, pw, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := local.Run(grid.NewField(grid.Cube(8))); err == nil {
		t.Error("wrong sub field size should fail")
	}
}

func TestDecomposedApproximatesBaseline(t *testing.T) {
	// End-to-end proposed method on a full input: decompose, convolve each
	// sub-domain locally, accumulate — must track the traditional result.
	d := grid.Cube(32)
	f := blobField(d, 21)
	kernel := green.Gaussian{Sigma: 2}
	dc := Decomposed{Kernel: kernel, SubSize: 8, FarRate: 8, Cfg: Config{Pruned: true}}
	got, ds, err := dc.Run(f)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Baseline(f, kernel, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := grid.RelL2(got, want)
	if r > 0.05 {
		t.Errorf("decomposed error %g > 5%%", r)
	}
	if ds.TotalBytes >= ds.DenseBytes {
		t.Errorf("compressed exchange %d must be < dense %d", ds.TotalBytes, ds.DenseBytes)
	}
	if len(ds.PerSub) != 64 {
		t.Errorf("expected 64 sub-domains, got %d", len(ds.PerSub))
	}
}

func TestDecomposedExactAtFullResolution(t *testing.T) {
	// The accumulation identity: with rate-1 trees (no compression) and a
	// delta kernel, decomposition + local convolution + accumulation must
	// reproduce the input exactly — Σ_d conv(δ, f·1_d) = f.
	d := grid.Cube(16)
	f := grid.NewField(d)
	rng := rand.New(rand.NewSource(4))
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	dc := Decomposed{
		Kernel: green.Delta{}, SubSize: 8, FarRate: 4, Cfg: Config{},
		TreeFor: func(sub grid.Box, dim grid.Dim3) (*octree.Tree, error) {
			return sample.Uniform{Rate: 1, CellSize: 8}.Tree(dim)
		},
	}
	got, _, err := dc.Run(f)
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := grid.RelL2(got, f); r > 1e-10 {
		t.Errorf("full-resolution delta decomposition error %g", r)
	}
}

func TestDecomposedGaussianExactAtFullResolution(t *testing.T) {
	// Same identity with a smoothing kernel: Σ_d conv(g, f·1_d) = conv(g, f).
	d := grid.Cube(16)
	f := grid.NewField(d)
	rng := rand.New(rand.NewSource(6))
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	kernel := green.Gaussian{Sigma: 1}
	dc := Decomposed{
		Kernel: kernel, SubSize: 8, Cfg: Config{Pruned: true},
		TreeFor: func(sub grid.Box, dim grid.Dim3) (*octree.Tree, error) {
			return sample.Uniform{Rate: 1, CellSize: 8}.Tree(dim)
		},
	}
	got, _, err := dc.Run(f)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Baseline(f, kernel, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := grid.RelL2(got, want); r > 1e-10 {
		t.Errorf("full-resolution decomposition error %g", r)
	}
}

func TestAccumulateDimMismatch(t *testing.T) {
	tree, err := sample.Uniform{Rate: 1, CellSize: 4}.Tree(grid.Cube(8))
	if err != nil {
		t.Fatal(err)
	}
	c := sample.NewCompressed(tree)
	if _, err := Accumulate(grid.Cube(16), []*sample.Compressed{c}); err == nil {
		t.Error("dim mismatch should fail")
	}
}

func TestAccumulateRegion(t *testing.T) {
	d := grid.Cube(16)
	tree, err := sample.Uniform{Rate: 1, CellSize: 4}.Tree(d)
	if err != nil {
		t.Fatal(err)
	}
	f := grid.NewField(d)
	for i := range f.Data {
		f.Data[i] = float64(i % 7)
	}
	c, err := sample.Compress(f, tree)
	if err != nil {
		t.Fatal(err)
	}
	region := grid.CubeAt(grid.Point{4, 4, 4}, 8)
	got, err := AccumulateRegion(d, []*sample.Compressed{c, c}, region)
	if err != nil {
		t.Fatal(err)
	}
	region.ForEach(func(x, y, z int) {
		if math.Abs(got.At(x, y, z)-2*f.At(x, y, z)) > 1e-12 {
			t.Fatalf("region accumulation wrong at (%d,%d,%d)", x, y, z)
		}
	})
	if got.At(0, 0, 0) != 0 {
		t.Error("outside region must stay zero")
	}
}

func TestDecomposedSkipsZeroSubdomains(t *testing.T) {
	// A single point source touches exactly one sub-domain; the other 63
	// must be skipped and the result must still match the baseline
	// exactly at full resolution.
	d := grid.Cube(32)
	f := grid.NewField(d)
	f.Set(5, 6, 7, 1)
	kernel := green.Gaussian{Sigma: 1.5}
	dc := Decomposed{
		Kernel: kernel, SubSize: 8, Cfg: Config{Pruned: true},
		TreeFor: func(sub grid.Box, dim grid.Dim3) (*octree.Tree, error) {
			return sample.Uniform{Rate: 1, CellSize: 8}.Tree(dim)
		},
	}
	got, ds, err := dc.Run(f)
	if err != nil {
		t.Fatal(err)
	}
	if ds.SkippedZero != 63 {
		t.Errorf("skipped %d zero sub-domains, want 63", ds.SkippedZero)
	}
	if len(ds.PerSub) != 1 {
		t.Errorf("computed %d sub-domains, want 1", len(ds.PerSub))
	}
	want, err := Baseline(f, kernel, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := grid.RelL2(got, want); r > 1e-10 {
		t.Errorf("sparse-input result differs by %g", r)
	}
}

func TestKernelPointwiseSeparableFastPath(t *testing.T) {
	// The separable fast path must agree with the generic path exactly.
	d := grid.Dim3{Nx: 16, Ny: 8, Nz: 4}
	kernel := green.Gaussian{Sigma: 1.3}
	fast := KernelPointwise(d, kernel)
	generic := func(kx, ky, kz int, v complex128) complex128 {
		return v * complex(kernel.Hat(d, kx, ky, kz), 0)
	}
	v := complex(1.25, -0.5)
	for kz := 0; kz < d.Nz; kz++ {
		for ky := 0; ky < d.Ny; ky++ {
			for kx := 0; kx < d.Nx; kx++ {
				a := fast(kx, ky, kz, v)
				b := generic(kx, ky, kz, v)
				if math.Abs(real(a-b)) > 1e-15 || math.Abs(imag(a-b)) > 1e-15 {
					t.Fatalf("(%d,%d,%d): fast %v generic %v", kx, ky, kz, a, b)
				}
			}
		}
	}
}

func TestRunAdaptiveSparseInputExact(t *testing.T) {
	// Two isolated blobs on a 32³ grid: the adaptive partition retains a
	// handful of boxes, and with rate-1 trees the result is exact.
	d := grid.Cube(32)
	f := grid.NewField(d)
	f.Set(4, 4, 4, 1)
	f.Set(28, 20, 10, -0.5)
	kernel := green.Gaussian{Sigma: 1.5}
	dc := Decomposed{
		Kernel: kernel, SubSize: 16, Cfg: Config{Pruned: true},
		TreeFor: func(sub grid.Box, dim grid.Dim3) (*octree.Tree, error) {
			return sample.Uniform{Rate: 1, CellSize: 8}.Tree(dim)
		},
	}
	got, ds, err := dc.RunAdaptive(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.PerSub) >= 8 {
		t.Errorf("adaptive partition kept %d boxes; expected a sparse handful", len(ds.PerSub))
	}
	want, err := Baseline(f, kernel, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := grid.RelL2(got, want); r > 1e-10 {
		t.Errorf("adaptive sparse result differs by %g", r)
	}
}

func TestRunAdaptiveMatchesRunOnDenseInput(t *testing.T) {
	// Fully dense input: the adaptive partition degenerates to the regular
	// one and must give the same answer as Run.
	d := grid.Cube(16)
	f := blobField(d, 9)
	for i := range f.Data {
		f.Data[i] += 0.01 // ensure every sub-domain active
	}
	kernel := green.Gaussian{Sigma: 2}
	dc := Decomposed{Kernel: kernel, SubSize: 8, FarRate: 8, Cfg: Config{Pruned: true}}
	a, _, err := dc.Run(f)
	if err != nil {
		t.Fatal(err)
	}
	b, ds, err := dc.RunAdaptive(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ds.SkippedZero != 0 {
		t.Errorf("dense input skipped %d boxes", ds.SkippedZero)
	}
	// Same partition but a slightly different default sampling policy
	// (RunAdaptive omits the edge band): both must track the exact
	// baseline comparably.
	exact, err := Baseline(f, kernel, 0)
	if err != nil {
		t.Fatal(err)
	}
	ra, _ := grid.RelL2(a, exact)
	rb, _ := grid.RelL2(b, exact)
	if rb > 2*ra+0.05 {
		t.Errorf("adaptive dense error %g vs regular %g", rb, ra)
	}
}

func TestBaselineTranslationEquivariance(t *testing.T) {
	// Circular convolution commutes with circular shifts: shifting the
	// input shifts the output identically.
	d := grid.Cube(16)
	f := randSub(16, 44)
	kernel := green.Gaussian{Sigma: 1.5}
	base, err := Baseline(f, kernel, 0)
	if err != nil {
		t.Fatal(err)
	}
	sx, sy, sz := 3, 7, 12
	shifted := grid.NewField(d)
	for z := 0; z < 16; z++ {
		for y := 0; y < 16; y++ {
			for x := 0; x < 16; x++ {
				shifted.Set((x+sx)%16, (y+sy)%16, (z+sz)%16, f.At(x, y, z))
			}
		}
	}
	got, err := Baseline(shifted, kernel, 0)
	if err != nil {
		t.Fatal(err)
	}
	for z := 0; z < 16; z++ {
		for y := 0; y < 16; y++ {
			for x := 0; x < 16; x++ {
				want := base.At(x, y, z)
				have := got.At((x+sx)%16, (y+sy)%16, (z+sz)%16)
				if math.Abs(want-have) > 1e-11 {
					t.Fatalf("equivariance violated at (%d,%d,%d): %g vs %g", x, y, z, want, have)
				}
			}
		}
	}
}

func TestConvolutionLinearityThroughKernelSum(t *testing.T) {
	// conv(Sum{A,B}, f) == conv(A, f) + conv(B, f).
	f := randSub(16, 77)
	a := green.Gaussian{Sigma: 1.5}
	b := green.Yukawa{Kappa: 1}
	oa, err := Baseline(f, a, 0)
	if err != nil {
		t.Fatal(err)
	}
	ob, err := Baseline(f, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	osum, err := Baseline(f, green.Sum{A: a, B: b}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := oa.Clone()
	if err := want.AddScaled(1, ob); err != nil {
		t.Fatal(err)
	}
	if r, _ := grid.RelL2(osum, want); r > 1e-12 {
		t.Errorf("kernel-sum linearity error %g", r)
	}
}

func TestConvolutionCompositionThroughKernelProduct(t *testing.T) {
	// conv(Product{A,B}, f) == conv(B, conv(A, f)).
	f := randSub(16, 78)
	a := green.Gaussian{Sigma: 1}
	b := green.Gaussian{Sigma: 1.2}
	once, err := Baseline(f, green.Product{A: a, B: b}, 0)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := Baseline(f, a, 0)
	if err != nil {
		t.Fatal(err)
	}
	twice, err := Baseline(mid, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := grid.RelL2(once, twice); r > 1e-11 {
		t.Errorf("kernel-product composition error %g", r)
	}
}

func TestDecomposedParallelMatchesSerial(t *testing.T) {
	d := grid.Cube(32)
	f := blobField(d, 41)
	kernel := green.Gaussian{Sigma: 2}
	serial := Decomposed{Kernel: kernel, SubSize: 8, FarRate: 8,
		Cfg: Config{Pruned: true, Workers: 1}}
	a, dsA, err := serial.Run(f)
	if err != nil {
		t.Fatal(err)
	}
	parallel := serial
	parallel.Parallel = 4
	b, dsB, err := parallel.Run(f)
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := grid.RelL2(b, a); r > 1e-12 {
		t.Errorf("parallel result differs from serial by %g", r)
	}
	if len(dsA.PerSub) != len(dsB.PerSub) || dsA.TotalSamples != dsB.TotalSamples {
		t.Errorf("stats differ: %d/%d vs %d/%d",
			len(dsA.PerSub), dsA.TotalSamples, len(dsB.PerSub), dsB.TotalSamples)
	}
}
