package conv

import (
	"fmt"
	"sync/atomic"

	"lowcomm3d/internal/fft"
	"lowcomm3d/internal/green"
	"lowcomm3d/internal/grid"
	"lowcomm3d/internal/octree"
	"lowcomm3d/internal/sample"
)

// Accumulate sums the interpolated reconstructions of per-sub-domain
// compressed results into one dense field — the paper's Algorithm 2 line 6
// accumulation ("exchange of samples between the workers in the last step
// followed by interpolation gives us the approximate result of the full
// convolution").
func Accumulate(dim grid.Dim3, results []*sample.Compressed) (*grid.Field, error) {
	out := grid.NewField(dim)
	for i, r := range results {
		if r.Tree.Dim != dim {
			return nil, fmt.Errorf("conv: result %d dims %v != %v", i, r.Tree.Dim, dim)
		}
		if err := r.AddTo(out, 1); err != nil {
			return nil, fmt.Errorf("conv: accumulating result %d: %w", i, err)
		}
	}
	return out, nil
}

// AccumulateRegion accumulates only within region — what a worker that
// owns that region computes after receiving every sub-domain's samples.
func AccumulateRegion(dim grid.Dim3, results []*sample.Compressed, region grid.Box) (*grid.Field, error) {
	out := grid.NewField(dim)
	for i, r := range results {
		if err := r.AddRegion(out, region, 1); err != nil {
			return nil, fmt.Errorf("conv: accumulating result %d: %w", i, err)
		}
	}
	return out, nil
}

// Decomposed is the end-to-end proposed method on a single machine:
// decompose the input into k³ sub-domains, convolve each locally with
// octree-sampled compression, and accumulate the compressed results. By
// linearity of convolution the accumulated field approximates the full
// circular convolution of the input.
type Decomposed struct {
	Kernel  green.Kernel
	SubSize int // k
	FarRate int // far-field downsampling rate (paper: 16 or 32)
	Cfg     Config

	// Parallel processes this many sub-domains concurrently, each with
	// its own pipeline (set Cfg.Workers to 1 to avoid oversubscribing the
	// per-pipeline parallelism). ≤1 runs serially.
	Parallel int

	// TreeFor overrides the sampling octree used for a sub-domain; nil
	// selects sample.DefaultPolicy(box, FarRate). Tests use a rate-1 tree
	// here to check the exact accumulation identity; ablations swap in
	// uniform sampling.
	TreeFor func(sub grid.Box, dim grid.Dim3) (*octree.Tree, error)
}

// DecomposedStats aggregates per-sub-domain stats.
type DecomposedStats struct {
	PerSub          []Stats
	TotalSamples    int
	TotalBytes      int // compressed bytes exchanged in the accumulation
	DenseBytes      int // dense-result bytes the traditional method exchanges
	MaxPeakBytes    int // worst per-sub-domain working set
	CompressionMean float64
	SkippedZero     int // sub-domains skipped because their input is identically zero

	// MaxLiveSubFields is the high-water count of simultaneously-live
	// extracted sub-field copies. Extraction is lazy — inside the worker
	// loop — so this stays ≤ the Parallel worker count instead of the
	// job count (also exported as the conv.live_subfields trace gauge).
	MaxLiveSubFields int
}

// Run convolves the full field f with the configured kernel using the
// proposed method and returns the approximate result.
func (dc Decomposed) Run(f *grid.Field) (*grid.Field, DecomposedStats, error) {
	var ds DecomposedStats
	boxes, err := grid.Decompose(f.Dim, dc.SubSize)
	if err != nil {
		return nil, ds, err
	}
	// Zero sub-domains convolve to zero: skip them entirely — the "zero
	// regions" structure the paper's intro lists among the exploitable
	// properties. Sparse inputs touch only a few sub-domains. The scan
	// reads f in place; no copies are made until a worker runs the job.
	var jobs []grid.Box
	for _, b := range boxes {
		if f.BoxAllZero(b) {
			ds.SkippedZero++
			continue
		}
		jobs = append(jobs, b)
	}
	results := make([]*sample.Compressed, len(jobs))
	stats := make([]Stats, len(jobs))
	workers := dc.Parallel
	if workers < 1 {
		workers = 1
	}
	// Sub-fields are extracted lazily inside the worker loop, so the peak
	// count of live k³ input copies is the number of active workers — not
	// the job count, which for a dense input is (N/k)³ copies of the
	// whole field's worth of data before any job runs.
	var live, liveMax atomic.Int64
	var ec fft.FirstError
	fft.ParallelFor(len(jobs), workers, func(_, i int) {
		if ec.Failed() {
			return
		}
		box := jobs[i]
		var tree *octree.Tree
		var err error
		if dc.TreeFor != nil {
			tree, err = dc.TreeFor(box, f.Dim)
		} else {
			tree, err = sample.DefaultPolicy(box, dc.FarRate).Tree(f.Dim)
		}
		if err != nil {
			ec.Record(err)
			return
		}
		local, err := NewLocal(f.Dim, box, tree, KernelPointwise(f.Dim, dc.Kernel), dc.Cfg)
		if err != nil {
			ec.Record(err)
			return
		}
		cur := live.Add(1)
		for {
			m := liveMax.Load()
			if cur <= m || liveMax.CompareAndSwap(m, cur) {
				break
			}
		}
		subField, err := f.ExtractBox(box)
		if err != nil {
			live.Add(-1)
			ec.Record(err)
			return
		}
		res, st, err := local.Run(subField)
		live.Add(-1)
		if err != nil {
			ec.Record(err)
			return
		}
		results[i] = res
		stats[i] = st
	})
	if err := ec.Err(); err != nil {
		return nil, ds, err
	}
	ds.MaxLiveSubFields = int(liveMax.Load())
	dc.Cfg.Trace.Gauge("conv.live_subfields").Max(liveMax.Load())
	for _, st := range stats {
		ds.PerSub = append(ds.PerSub, st)
		ds.TotalSamples += st.SampleCount
		ds.TotalBytes += st.SampleBytes
		if st.PeakBytes > ds.MaxPeakBytes {
			ds.MaxPeakBytes = st.PeakBytes
		}
		ds.CompressionMean += st.Compression
	}
	if len(ds.PerSub) > 0 {
		ds.CompressionMean /= float64(len(ds.PerSub))
	}
	ds.DenseBytes = 8 * f.Dim.Len() * (len(boxes) - ds.SkippedZero)
	acc := dc.Cfg.Trace.Start("conv.accumulate")
	out, err := Accumulate(f.Dim, results)
	acc.End()
	if err != nil {
		return nil, ds, err
	}
	return out, ds, nil
}

// RunAdaptive convolves f with an irregular, input-adaptive partition
// (paper §3.1: "irregular partitions can also be made"): inactive regions
// are never decomposed at all, partially-active maxK cubes are subdivided
// down to minK, and each retained cube — of whatever size — runs the local
// pipeline. For sparse inputs this goes beyond Run's zero-skipping: the
// retained boxes hug the support, so the slabs and exchanges shrink too.
// dc.SubSize is the maximum cube size; minK the smallest.
func (dc Decomposed) RunAdaptive(f *grid.Field, minK int) (*grid.Field, DecomposedStats, error) {
	var ds DecomposedStats
	boxes, err := grid.DecomposeAdaptive(f.Dim, dc.SubSize, minK, grid.ActiveNonzero(f))
	if err != nil {
		return nil, ds, err
	}
	full, err := grid.Decompose(f.Dim, dc.SubSize)
	if err != nil {
		return nil, ds, err
	}
	ds.SkippedZero = len(full) - len(boxes) // vs the regular partition, informational
	results := make([]*sample.Compressed, 0, len(boxes))
	for _, b := range boxes {
		subField, err := f.ExtractBox(b)
		if err != nil {
			return nil, ds, err
		}
		var tree *octree.Tree
		if dc.TreeFor != nil {
			tree, err = dc.TreeFor(b, f.Dim)
		} else {
			// No edge band here: with the small cubes an adaptive
			// partition produces, a k/4-wide boundary band shatters into
			// unit cells and dominates the sample budget (see the
			// far-rate ablation in EXPERIMENTS.md).
			pol := sample.Policy{Sub: b, NearRate: 2, MidRate: 8, FarRate: dc.FarRate}
			tree, err = pol.Tree(f.Dim)
		}
		if err != nil {
			return nil, ds, err
		}
		local, err := NewLocal(f.Dim, b, tree, KernelPointwise(f.Dim, dc.Kernel), dc.Cfg)
		if err != nil {
			return nil, ds, err
		}
		res, st, err := local.Run(subField)
		if err != nil {
			return nil, ds, err
		}
		ds.PerSub = append(ds.PerSub, st)
		ds.TotalSamples += st.SampleCount
		ds.TotalBytes += st.SampleBytes
		if st.PeakBytes > ds.MaxPeakBytes {
			ds.MaxPeakBytes = st.PeakBytes
		}
		ds.CompressionMean += st.Compression
		results = append(results, res)
	}
	if len(ds.PerSub) > 0 {
		ds.CompressionMean /= float64(len(ds.PerSub))
	}
	ds.DenseBytes = 8 * f.Dim.Len() * len(boxes)
	out, err := Accumulate(f.Dim, results)
	if err != nil {
		return nil, ds, err
	}
	return out, ds, nil
}
