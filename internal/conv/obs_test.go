package conv

import (
	"testing"
	"time"

	"lowcomm3d/internal/green"
	"lowcomm3d/internal/grid"
	"lowcomm3d/internal/obs"
	"lowcomm3d/internal/sample"
)

// TestSpanCoverage is the ISSUE's no-unattributed-hot-path check: the
// three stage spans must account for ≥95% of conv.Local.Run's wall time —
// if someone adds work outside a stage, this fails and the trace goes
// blind to it.
func TestSpanCoverage(t *testing.T) {
	const n, k = 64, 16
	d := grid.Cube(n)
	box := grid.BoxAt(grid.Point{0, 0, 0}, k, k, k)
	tree, err := sample.DefaultPolicy(box, 8).Tree(d)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New()
	l, err := NewLocal(d, box, tree, KernelPointwise(d, green.Gaussian{Sigma: 2}), Config{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	f := grid.NewField(grid.Cube(k))
	for i := range f.Data {
		f.Data[i] = float64(i%13) - 6
	}
	if _, _, err := l.Run(f); err != nil {
		t.Fatal(err)
	}

	run := tr.SpanTotal("conv.run")
	if run <= 0 {
		t.Fatal("no conv.run span recorded")
	}
	var stages time.Duration
	for _, name := range []string{"conv.stageA", "conv.stageB", "conv.stageC"} {
		st := tr.SpanTotal(name)
		if st <= 0 {
			t.Errorf("stage span %s missing", name)
		}
		stages += st
	}
	if float64(stages) < 0.95*float64(run) {
		t.Errorf("stages cover %v of %v (%.1f%%), want ≥95%%",
			stages, run, 100*float64(stages)/float64(run))
	}
	if stages > run {
		t.Errorf("stages %v exceed run %v: spans are not nested", stages, run)
	}
}

// TestRunCounters pins the obs counters to the Stats values they mirror.
func TestRunCounters(t *testing.T) {
	const n, k = 32, 8
	d := grid.Cube(n)
	box := grid.BoxAt(grid.Point{8, 8, 8}, k, k, k)
	tree, err := sample.DefaultPolicy(box, 8).Tree(d)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New()
	l, err := NewLocal(d, box, tree, KernelPointwise(d, green.Gaussian{Sigma: 2}), Config{Trace: tr, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	f := grid.NewField(grid.Cube(k))
	f.Set(3, 3, 3, 1)
	_, st, err := l.Run(f)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.CounterValue("conv.pencils"); got != int64(st.PencilCount) {
		t.Errorf("conv.pencils = %d, Stats.PencilCount = %d", got, st.PencilCount)
	}
	if st.PencilCount != n*n {
		t.Errorf("PencilCount = %d, want n² = %d", st.PencilCount, n*n)
	}
	if got := tr.CounterValue("conv.samples"); got != int64(st.SampleCount) {
		t.Errorf("conv.samples = %d, Stats.SampleCount = %d", got, st.SampleCount)
	}
	if got := tr.CounterValue("conv.sample_bytes"); got != int64(st.SampleBytes) {
		t.Errorf("conv.sample_bytes = %d, Stats.SampleBytes = %d", got, st.SampleBytes)
	}
	if got := tr.GaugeValue("conv.peak_bytes"); got != int64(st.PeakBytes) {
		t.Errorf("conv.peak_bytes = %d, Stats.PeakBytes = %d", got, st.PeakBytes)
	}
	if tr.CounterValue("conv.flops_model") <= 0 {
		t.Error("conv.flops_model not accumulated")
	}
	// A second run accumulates rather than resets.
	if _, _, err := l.Run(f); err != nil {
		t.Fatal(err)
	}
	if got := tr.CounterValue("conv.pencils"); got != 2*int64(st.PencilCount) {
		t.Errorf("after 2 runs conv.pencils = %d, want %d", got, 2*st.PencilCount)
	}
	// Worker spans landed off the main track.
	sawWorker := false
	for _, s := range tr.Spans() {
		if s.Name == "conv.stageB.worker" && s.Track > 0 {
			sawWorker = true
		}
	}
	if !sawWorker {
		t.Error("no conv.stageB.worker span on a worker track")
	}
}

// TestNilTraceRunsClean pins the nil-trace default: no spans, no panic,
// identical results.
func TestNilTraceRunsClean(t *testing.T) {
	const n, k = 16, 8
	d := grid.Cube(n)
	box := grid.BoxAt(grid.Point{0, 0, 0}, k, k, k)
	tree, err := sample.DefaultPolicy(box, 4).Tree(d)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(cfg Config) []float64 {
		l, err := NewLocal(d, box, tree, KernelPointwise(d, green.Gaussian{Sigma: 1.5}), cfg)
		if err != nil {
			t.Fatal(err)
		}
		f := grid.NewField(grid.Cube(k))
		f.Set(1, 2, 3, 1)
		res, _, err := l.Run(f)
		if err != nil {
			t.Fatal(err)
		}
		return res.Samples
	}
	plain := mk(Config{})
	traced := mk(Config{Trace: obs.New()})
	if len(plain) != len(traced) {
		t.Fatalf("sample count differs: %d vs %d", len(plain), len(traced))
	}
	for i := range plain {
		if plain[i] != traced[i] {
			t.Fatalf("sample %d differs: %g vs %g (tracing changed results)", i, plain[i], traced[i])
		}
	}
}
