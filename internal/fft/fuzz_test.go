package fft

import (
	"math"
	"math/cmplx"
	"testing"
)

// FuzzFFTRoundTrip asserts Inverse(Forward(x)) ≈ x for arbitrary lengths —
// the radix-2 path for powers of two and the Bluestein chirp-z path for
// everything else (including primes) — with inputs built from fuzzed bytes.
func FuzzFFTRoundTrip(f *testing.F) {
	f.Add(8, []byte{1, 2, 3, 4})          // radix-2
	f.Add(7, []byte{0xff, 0x00, 0x7f})    // Bluestein prime
	f.Add(13, []byte{9, 9, 9, 9, 9, 9})   // Bluestein prime
	f.Add(1, []byte{42})                  // degenerate length
	f.Add(12, []byte{5, 4, 3, 2, 1, 0})   // composite non-pow2
	f.Add(64, []byte{})                   // zero input, larger pow2
	f.Add(31, []byte{128, 64, 32, 16, 8}) // Mersenne prime
	f.Add(100, []byte{1, 1, 2, 3, 5, 8, 13})

	f.Fuzz(func(t *testing.T, n int, data []byte) {
		// Clamp to sane plan sizes; the transform is O(n log n) but the
		// fuzzer shouldn't burn time on megapoint plans.
		if n < 1 {
			n = -n
		}
		n = n%512 + 1
		plan, err := NewPlan(n)
		if err != nil {
			t.Fatalf("NewPlan(%d): %v", n, err)
		}
		x := make([]complex128, n)
		for i := range x {
			var re, im byte
			if len(data) > 0 {
				re = data[(2*i)%len(data)]
				im = data[(2*i+1)%len(data)]
			}
			x[i] = complex(float64(re)-128, float64(im)-128)
		}
		spec := make([]complex128, n)
		if err := plan.Forward(spec, x); err != nil {
			t.Fatalf("Forward(n=%d): %v", n, err)
		}
		back := make([]complex128, n)
		if err := plan.Inverse(back, spec); err != nil {
			t.Fatalf("Inverse(n=%d): %v", n, err)
		}
		// Relative tolerance scaled by input magnitude and n: Bluestein
		// round-trips through a larger padded transform, so allow a few
		// ULP-per-log factors beyond machine epsilon.
		maxIn := 0.0
		for _, v := range x {
			if a := cmplx.Abs(v); a > maxIn {
				maxIn = a
			}
		}
		tol := 1e-9 * (maxIn + 1) * float64(n)
		for i := range x {
			if d := cmplx.Abs(back[i] - x[i]); d > tol || math.IsNaN(d) {
				t.Fatalf("n=%d: round-trip error %g at %d (tol %g): %v vs %v",
					n, d, i, tol, back[i], x[i])
			}
		}
	})
}
