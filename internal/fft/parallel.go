package fft

import (
	"runtime"
	"sync"

	"lowcomm3d/internal/obs"
)

// ParallelFor runs f(i) for i in [0, n) across up to workers goroutines.
// workers ≤ 0 selects GOMAXPROCS. Work is handed out in contiguous chunks
// so per-goroutine scratch stays cache-warm. Each invocation of f receives
// the worker id w (0 ≤ w < workers) so callers can index per-worker
// scratch buffers.
func ParallelFor(n, workers int, f func(w, i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(0, i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				f(w, i)
			}
		}(w, lo, hi)
	}
	wg.Wait()
}

// ParallelForSpanned is ParallelFor with per-worker observability: each
// worker goroutine's whole chunk is wrapped in an obs span named name on
// display track w+1 (track 0 stays free for the caller's stage spans), so
// a Chrome trace shows the worker lanes side by side and any load
// imbalance is visible as ragged span ends. A nil parent degrades to plain
// ParallelFor with no recording.
func ParallelForSpanned(parent *obs.Span, name string, n, workers int, f func(w, i int)) {
	if parent == nil {
		ParallelFor(n, workers, f)
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		sp := parent.StartTrack(name, 1)
		for i := 0; i < n; i++ {
			f(0, i)
		}
		sp.End()
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			sp := parent.StartTrack(name, w+1)
			for i := lo; i < hi; i++ {
				f(w, i)
			}
			sp.End()
		}(w, lo, hi)
	}
	wg.Wait()
}

// Workers normalizes a requested worker count: ≤0 means GOMAXPROCS.
func Workers(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// FirstError collects the first error recorded from concurrent workers.
// The zero value is ready to use.
type FirstError struct {
	mu  sync.Mutex
	err error
}

// Record stores err if it is the first non-nil error seen.
func (f *FirstError) Record(err error) {
	if err == nil {
		return
	}
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.mu.Unlock()
}

// Reset clears any recorded error so the collector can be reused across
// runs (long-lived pipelines keep one FirstError instead of allocating a
// fresh collector per run).
func (f *FirstError) Reset() {
	f.mu.Lock()
	f.err = nil
	f.mu.Unlock()
}

// Err returns the first recorded error, or nil.
func (f *FirstError) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// Failed reports whether any error has been recorded; workers use it to
// bail out early.
func (f *FirstError) Failed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err != nil
}
