package fft

import (
	"fmt"
	"math"
)

// PrunedPlan computes length-n forward DFTs of inputs whose support is a
// contiguous block of at most k points, without touching the implicit
// zeros. This is the 1D building block of the paper's "zero structure is
// implicit in the 1D calls" strategy (§3.1): the k³ sub-domain is never
// padded to N³; each 1D line is transformed with its zero tail pruned.
//
// Algorithm (transform decomposition, Sorensen & Burrus): choose a
// power-of-two q with k ≤ q and q | n, let m = n/q. Split the output index
// j = b + m·a (a < q, b < m). Then
//
//	X_{b+ma} = W_q^{a·o} · DFT_q(z_b)[a],  z_b[t] = x_t·W_n^{b(o+t)},
//
// where o is the support offset (the W_q^{a·o} phase carries the shift),
//
// i.e. m chirp-scaled q-point DFTs instead of one n-point DFT: cost
// m·(k + q·log q) versus n·log n.
type PrunedPlan struct {
	n, k, q, m int
	qplan      *Plan
	wn         []complex128 // W_n^j = exp(-2πi j/n), j < n
}

// NewPrunedPlan creates a pruned plan for length-n transforms with input
// support ≤ k. n must be a power of two (the sizes used throughout the
// paper) and 1 ≤ k ≤ n.
func NewPrunedPlan(n, k int) (*PrunedPlan, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: pruned plan requires power-of-two n, got %d", n)
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("fft: pruned support k=%d out of range [1,%d]", k, n)
	}
	q := 1
	for q < k {
		q <<= 1
	}
	p := &PrunedPlan{n: n, k: k, q: q, m: n / q}
	var err error
	p.qplan, err = NewPlan(q)
	if err != nil {
		return nil, err
	}
	p.wn = make([]complex128, n)
	for j := range p.wn {
		s, c := math.Sincos(-2 * math.Pi * float64(j) / float64(n))
		p.wn[j] = complex(c, s)
	}
	return p, nil
}

// N returns the full transform length.
func (p *PrunedPlan) N() int { return p.n }

// K returns the maximum input support.
func (p *PrunedPlan) K() int { return p.k }

// Forward computes the length-n DFT of the signal that equals src (length
// ≤ k) at positions [off, off+len(src)) and zero elsewhere. dst must have
// length n. scratch must have length ≥ q.
func (p *PrunedPlan) Forward(dst []complex128, src []complex128, off int, scratch []complex128) error {
	if len(dst) != p.n {
		return fmt.Errorf("fft: pruned dst length %d != %d", len(dst), p.n)
	}
	if len(src) > p.k {
		return fmt.Errorf("fft: pruned src length %d > support %d", len(src), p.k)
	}
	if off < 0 || off+len(src) > p.n {
		return fmt.Errorf("fft: pruned support [%d,%d) outside [0,%d)", off, off+len(src), p.n)
	}
	if len(scratch) < p.q {
		return fmt.Errorf("fft: pruned scratch length %d < %d", len(scratch), p.q)
	}
	z := scratch[:p.q]
	for b := 0; b < p.m; b++ {
		for i := range z {
			z[i] = 0
		}
		// z_b[t] = x[off+t]·W_n^{b·(off+t)}; the offset folds into the
		// chirp so the caller never materializes the shifted signal.
		for t := 0; t < len(src); t++ {
			z[t] = src[t] * p.wn[(b*(off+t))%p.n]
		}
		if err := p.qplan.Forward(z, z); err != nil {
			return err
		}
		for a := 0; a < p.q; a++ {
			// W_q^{a·off} = W_n^{m·a·off} carries the support shift.
			dst[b+p.m*a] = z[a] * p.wn[(p.m*a%p.n)*(off%p.n)%p.n]
		}
	}
	return nil
}

// FlopEstimate returns approximate complex-multiply counts for the pruned
// transform and for a plain padded n-point FFT, for reporting and the
// ablation bench.
func (p *PrunedPlan) FlopEstimate() (pruned, full float64) {
	logq := math.Log2(float64(p.q))
	pruned = float64(p.m) * (float64(p.k) + float64(p.q)/2*logq)
	full = float64(p.n) / 2 * math.Log2(float64(p.n))
	return
}

// InverseSampled evaluates the normalized inverse DFT of spectrum (length
// n) only at the given output indices, returning one value per index. For
// few samples it uses direct evaluation, O(|idx|·n); above the crossover it
// falls back to a full inverse transform plus gather. This is the 1D
// analogue of the paper's "compression applied after each 1D iFFT stage":
// outputs that the sampling policy discards are never computed.
func InverseSampled(plan *Plan, spectrum []complex128, idx []int) ([]complex128, error) {
	n := plan.N()
	if len(spectrum) != n {
		return nil, fmt.Errorf("fft: spectrum length %d != plan %d", len(spectrum), n)
	}
	out := make([]complex128, len(idx))
	// Crossover: direct costs |idx|·n multiplies, the full inverse costs
	// ~n·log2(n)/2. Pick direct when clearly cheaper.
	if float64(len(idx))*float64(n) < float64(n)*math.Log2(float64(n)) {
		for i, j := range idx {
			if j < 0 || j >= n {
				return nil, fmt.Errorf("fft: sample index %d outside [0,%d)", j, n)
			}
			var sum complex128
			for t := 0; t < n; t++ {
				ang := 2 * math.Pi * float64(j*t%n) / float64(n)
				s, c := math.Sincos(ang)
				sum += spectrum[t] * complex(c, s)
			}
			out[i] = sum / complex(float64(n), 0)
		}
		return out, nil
	}
	full := make([]complex128, n)
	if err := plan.Inverse(full, spectrum); err != nil {
		return nil, err
	}
	for i, j := range idx {
		if j < 0 || j >= n {
			return nil, fmt.Errorf("fft: sample index %d outside [0,%d)", j, n)
		}
		out[i] = full[j]
	}
	return out, nil
}
