package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func randReal(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func TestRealForwardMatchesComplex(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 64, 128, 6, 10} {
		rp, err := NewRealPlan(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		x := randReal(n, int64(n))
		half := make([]complex128, rp.SpectrumLen())
		if err := rp.Forward(half, x); err != nil {
			t.Fatal(err)
		}
		// Reference: full complex transform.
		cx := make([]complex128, n)
		for i, v := range x {
			cx[i] = complex(v, 0)
		}
		want := make([]complex128, n)
		if err := MustPlan(n).Forward(want, cx); err != nil {
			t.Fatal(err)
		}
		for k := 0; k <= n/2; k++ {
			if d := cmplx.Abs(half[k] - want[k]); d > 1e-10*float64(n) {
				t.Errorf("n=%d k=%d: r2c %v complex %v", n, k, half[k], want[k])
			}
		}
		// Full expansion must reproduce the whole Hermitian spectrum.
		full := make([]complex128, n)
		if err := rp.FullSpectrum(full, half); err != nil {
			t.Fatal(err)
		}
		if d := maxDiff(full, want); d > 1e-10*float64(n) {
			t.Errorf("n=%d: full spectrum diff %g", n, d)
		}
	}
}

func TestRealRoundTrip(t *testing.T) {
	for _, n := range []int{4, 16, 64, 256} {
		rp, err := NewRealPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		x := randReal(n, 7)
		half := make([]complex128, rp.SpectrumLen())
		if err := rp.Forward(half, x); err != nil {
			t.Fatal(err)
		}
		back := make([]float64, n)
		if err := rp.Inverse(back, half); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-11*float64(n) {
				t.Fatalf("n=%d: round trip diff at %d: %g vs %g", n, i, back[i], x[i])
			}
		}
	}
}

func TestRealPlanSpecialCoefficients(t *testing.T) {
	// X[0] = Σx (DC) and X[n/2] = Σ(−1)^i·x must be purely real.
	n := 32
	rp, _ := NewRealPlan(n)
	x := randReal(n, 3)
	half := make([]complex128, rp.SpectrumLen())
	if err := rp.Forward(half, x); err != nil {
		t.Fatal(err)
	}
	sum, alt := 0.0, 0.0
	for i, v := range x {
		sum += v
		if i%2 == 0 {
			alt += v
		} else {
			alt -= v
		}
	}
	if math.Abs(real(half[0])-sum) > 1e-10 || math.Abs(imag(half[0])) > 1e-10 {
		t.Errorf("DC = %v want %g", half[0], sum)
	}
	if math.Abs(real(half[n/2])-alt) > 1e-10 || math.Abs(imag(half[n/2])) > 1e-10 {
		t.Errorf("Nyquist = %v want %g", half[n/2], alt)
	}
}

func TestRealPlanErrors(t *testing.T) {
	if _, err := NewRealPlan(3); err == nil {
		t.Error("odd n should fail")
	}
	if _, err := NewRealPlan(0); err == nil {
		t.Error("n=0 should fail")
	}
	rp, _ := NewRealPlan(8)
	if err := rp.Forward(make([]complex128, 4), make([]float64, 8)); err == nil {
		t.Error("short spectrum should fail")
	}
	if err := rp.Forward(make([]complex128, 5), make([]float64, 6)); err == nil {
		t.Error("short input should fail")
	}
	if err := rp.Inverse(make([]float64, 8), make([]complex128, 4)); err == nil {
		t.Error("short spectrum should fail")
	}
	if err := rp.Inverse(make([]float64, 6), make([]complex128, 5)); err == nil {
		t.Error("short output should fail")
	}
	if err := rp.FullSpectrum(make([]complex128, 4), make([]complex128, 5)); err == nil {
		t.Error("short full buffer should fail")
	}
	if err := rp.FullSpectrum(make([]complex128, 8), make([]complex128, 3)); err == nil {
		t.Error("short half buffer should fail")
	}
}

func TestRealParseval(t *testing.T) {
	n := 64
	rp, _ := NewRealPlan(n)
	x := randReal(n, 9)
	half := make([]complex128, rp.SpectrumLen())
	if err := rp.Forward(half, x); err != nil {
		t.Fatal(err)
	}
	ex := 0.0
	for _, v := range x {
		ex += v * v
	}
	// Σ|X|² over the full spectrum = DC + Nyquist + 2×interior half.
	ey := real(half[0])*real(half[0]) + real(half[n/2])*real(half[n/2])
	for k := 1; k < n/2; k++ {
		m := cmplx.Abs(half[k])
		ey += 2 * m * m
	}
	if math.Abs(ex-ey/float64(n)) > 1e-9*(1+ex) {
		t.Errorf("Parseval: %g vs %g", ex, ey/float64(n))
	}
}

func BenchmarkRealVsComplexFFT(b *testing.B) {
	n := 4096
	rp, _ := NewRealPlan(n)
	cp := MustPlan(n)
	x := randReal(n, 1)
	half := make([]complex128, rp.SpectrumLen())
	cx := make([]complex128, n)
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	cy := make([]complex128, n)
	b.Run("r2c", func(b *testing.B) {
		b.SetBytes(int64(8 * n))
		for i := 0; i < b.N; i++ {
			if err := rp.Forward(half, x); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("complex", func(b *testing.B) {
		b.SetBytes(int64(16 * n))
		for i := 0; i < b.N; i++ {
			if err := cp.Forward(cy, cx); err != nil {
				b.Fatal(err)
			}
		}
	})
}
