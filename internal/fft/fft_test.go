package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randComplex(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxDiff(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestForwardMatchesDirect(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 31, 32, 60, 64, 100, 128} {
		p := MustPlan(n)
		x := randComplex(n, int64(n))
		got := make([]complex128, n)
		if err := p.Forward(got, x); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := DFTDirect(x)
		if d := maxDiff(got, want); d > 1e-9*float64(n) {
			t.Errorf("n=%d: max diff %g", n, d)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8, 13, 16, 27, 64, 81, 128, 256} {
		p := MustPlan(n)
		x := randComplex(n, int64(2*n+1))
		y := make([]complex128, n)
		if err := p.Forward(y, x); err != nil {
			t.Fatal(err)
		}
		z := make([]complex128, n)
		if err := p.Inverse(z, y); err != nil {
			t.Fatal(err)
		}
		if d := maxDiff(z, x); d > 1e-10*float64(n) {
			t.Errorf("n=%d: round-trip diff %g", n, d)
		}
	}
}

func TestInPlaceTransform(t *testing.T) {
	for _, n := range []int{8, 12, 64} {
		p := MustPlan(n)
		x := randComplex(n, 99)
		want := make([]complex128, n)
		if err := p.Forward(want, x); err != nil {
			t.Fatal(err)
		}
		inPlace := append([]complex128(nil), x...)
		if err := p.Forward(inPlace, inPlace); err != nil {
			t.Fatal(err)
		}
		if d := maxDiff(inPlace, want); d > 1e-12*float64(n) {
			t.Errorf("n=%d: in-place differs by %g", n, d)
		}
	}
}

func TestImpulseResponse(t *testing.T) {
	// DFT of delta at 0 is all-ones.
	n := 16
	p := MustPlan(n)
	x := make([]complex128, n)
	x[0] = 1
	y := make([]complex128, n)
	if err := p.Forward(y, x); err != nil {
		t.Fatal(err)
	}
	for k, v := range y {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("y[%d] = %v want 1", k, v)
		}
	}
}

func TestShiftedImpulse(t *testing.T) {
	// DFT of delta at t0 is exp(-2πi·k·t0/n).
	n := 32
	t0 := 5
	p := MustPlan(n)
	x := make([]complex128, n)
	x[t0] = 1
	y := make([]complex128, n)
	if err := p.Forward(y, x); err != nil {
		t.Fatal(err)
	}
	for k := range y {
		want := cmplx.Exp(complex(0, -2*math.Pi*float64(k*t0)/float64(n)))
		if cmplx.Abs(y[k]-want) > 1e-12 {
			t.Fatalf("y[%d] = %v want %v", k, y[k], want)
		}
	}
}

func TestLinearity(t *testing.T) {
	n := 24 // exercises Bluestein
	p := MustPlan(n)
	x := randComplex(n, 1)
	y := randComplex(n, 2)
	a, b := complex(2.5, -1), complex(-0.5, 3)
	// z = a·x + b·y
	z := make([]complex128, n)
	for i := range z {
		z[i] = a*x[i] + b*y[i]
	}
	fx := make([]complex128, n)
	fy := make([]complex128, n)
	fz := make([]complex128, n)
	if err := p.Forward(fx, x); err != nil {
		t.Fatal(err)
	}
	if err := p.Forward(fy, y); err != nil {
		t.Fatal(err)
	}
	if err := p.Forward(fz, z); err != nil {
		t.Fatal(err)
	}
	for k := range fz {
		want := a*fx[k] + b*fy[k]
		if cmplx.Abs(fz[k]-want) > 1e-9 {
			t.Fatalf("linearity violated at %d: %v vs %v", k, fz[k], want)
		}
	}
}

func TestParsevalQuick(t *testing.T) {
	// Σ|x|² == (1/n)·Σ|X|² for the unnormalized forward transform.
	n := 64
	p := MustPlan(n)
	f := func(seed int64) bool {
		x := randComplex(n, seed)
		y := make([]complex128, n)
		if err := p.Forward(y, x); err != nil {
			return false
		}
		var ex, ey float64
		for i := range x {
			ex += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
			ey += real(y[i])*real(y[i]) + imag(y[i])*imag(y[i])
		}
		return math.Abs(ex-ey/float64(n)) <= 1e-9*(1+ex)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPlanErrors(t *testing.T) {
	if _, err := NewPlan(0); err == nil {
		t.Error("NewPlan(0) should fail")
	}
	if _, err := NewPlan(-4); err == nil {
		t.Error("NewPlan(-4) should fail")
	}
	p := MustPlan(8)
	if err := p.Forward(make([]complex128, 4), make([]complex128, 8)); err == nil {
		t.Error("short dst should fail")
	}
	if err := p.Forward(make([]complex128, 8), make([]complex128, 4)); err == nil {
		t.Error("short src should fail")
	}
}

func TestStridedTransform(t *testing.T) {
	// Embed a length-8 sequence with stride 3 in a larger buffer and check
	// the strided transform matches the contiguous one.
	n, stride, off := 8, 3, 2
	p := MustPlan(n)
	x := randComplex(n, 7)
	buf := make([]complex128, off+n*stride+1)
	for i := 0; i < n; i++ {
		buf[off+i*stride] = x[i]
	}
	want := make([]complex128, n)
	if err := p.Forward(want, x); err != nil {
		t.Fatal(err)
	}
	scratch := make([]complex128, n)
	if err := p.ForwardStrided(buf, off, stride, scratch); err != nil {
		t.Fatal(err)
	}
	got := make([]complex128, n)
	for i := 0; i < n; i++ {
		got[i] = buf[off+i*stride]
	}
	if d := maxDiff(got, want); d > 1e-12 {
		t.Errorf("strided diff %g", d)
	}
	// Non-strided positions must be untouched.
	if buf[0] != 0 || buf[1] != 0 {
		t.Error("strided transform wrote outside its lattice")
	}
}

func TestStridedErrors(t *testing.T) {
	p := MustPlan(8)
	buf := make([]complex128, 16)
	scratch := make([]complex128, 8)
	if err := p.ForwardStrided(buf, 0, 0, scratch); err == nil {
		t.Error("zero stride should fail")
	}
	if err := p.ForwardStrided(buf, 10, 1, scratch); err == nil {
		t.Error("overflow range should fail")
	}
	if err := p.ForwardStrided(buf, 0, 1, make([]complex128, 2)); err == nil {
		t.Error("short scratch should fail")
	}
	if err := p.InverseStrided(buf, 0, 3, scratch); err == nil {
		t.Error("stride overrun should fail")
	}
}

func TestBluesteinLargePrime(t *testing.T) {
	n := 251
	p := MustPlan(n)
	x := randComplex(n, 11)
	got := make([]complex128, n)
	if err := p.Forward(got, x); err != nil {
		t.Fatal(err)
	}
	want := DFTDirect(x)
	if d := maxDiff(got, want); d > 1e-8 {
		t.Errorf("prime-length diff %g", d)
	}
}

func TestConvolutionTheorem1D(t *testing.T) {
	// Circular convolution via FFT must match the direct O(n²) sum.
	n := 16
	p := MustPlan(n)
	rng := rand.New(rand.NewSource(5))
	x := make([]float64, n)
	h := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
		h[i] = rng.Float64()
	}
	want := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want[i] += x[j] * h[(i-j+n)%n]
		}
	}
	cx := make([]complex128, n)
	ch := make([]complex128, n)
	for i := range x {
		cx[i] = complex(x[i], 0)
		ch[i] = complex(h[i], 0)
	}
	if err := p.Forward(cx, cx); err != nil {
		t.Fatal(err)
	}
	if err := p.Forward(ch, ch); err != nil {
		t.Fatal(err)
	}
	for i := range cx {
		cx[i] *= ch[i]
	}
	if err := p.Inverse(cx, cx); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(real(cx[i])-want[i]) > 1e-10 {
			t.Fatalf("conv[%d] = %g want %g", i, real(cx[i]), want[i])
		}
		if math.Abs(imag(cx[i])) > 1e-12 {
			t.Fatalf("conv[%d] has imaginary part %g", i, imag(cx[i]))
		}
	}
}

func TestAllSmallSizesMatchDirect(t *testing.T) {
	// Exhaustive sweep: every transform length 1..64 (radix-2 and
	// Bluestein paths) against the O(n²) definition, plus round trips.
	for n := 1; n <= 64; n++ {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		x := randComplex(n, int64(1000+n))
		got := make([]complex128, n)
		if err := p.Forward(got, x); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := DFTDirect(x)
		if d := maxDiff(got, want); d > 1e-9*float64(n+1) {
			t.Errorf("n=%d: forward diff %g", n, d)
		}
		back := make([]complex128, n)
		if err := p.Inverse(back, got); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := maxDiff(back, x); d > 1e-10*float64(n+1) {
			t.Errorf("n=%d: round-trip diff %g", n, d)
		}
	}
}

func TestAllSmallPrunedSupports(t *testing.T) {
	// Every (n, k, offset) combination for n = 32: the pruned transform
	// must equal explicit padding at every support placement.
	n := 32
	full := MustPlan(n)
	for k := 1; k <= n; k <<= 1 {
		pp, err := NewPrunedPlan(n, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		scratch := make([]complex128, n)
		for off := 0; off+k <= n; off += 3 {
			src := randComplex(k, int64(k*100+off))
			padded := make([]complex128, n)
			copy(padded[off:], src)
			want := make([]complex128, n)
			if err := full.Forward(want, padded); err != nil {
				t.Fatal(err)
			}
			got := make([]complex128, n)
			if err := pp.Forward(got, src, off, scratch); err != nil {
				t.Fatal(err)
			}
			if d := maxDiff(got, want); d > 1e-9 {
				t.Errorf("k=%d off=%d: diff %g", k, off, d)
			}
		}
	}
}
