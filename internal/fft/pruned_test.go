package fft

import (
	"math/rand"
	"testing"
)

func TestPrunedForwardMatchesPadded(t *testing.T) {
	for _, tc := range []struct{ n, k, off int }{
		{64, 8, 0},
		{64, 8, 13},
		{64, 8, 56},
		{128, 32, 0},
		{128, 32, 96},
		{128, 5, 40}, // support smaller than plan k rounds to q=8
		{256, 1, 100},
		{16, 16, 0}, // no pruning possible: q == n
	} {
		pp, err := NewPrunedPlan(tc.n, tc.k)
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		src := randComplex(tc.k, int64(tc.n+tc.k+tc.off))
		// Reference: explicit zero-padding + full FFT.
		padded := make([]complex128, tc.n)
		copy(padded[tc.off:], src)
		want := make([]complex128, tc.n)
		if err := MustPlan(tc.n).Forward(want, padded); err != nil {
			t.Fatal(err)
		}
		got := make([]complex128, tc.n)
		scratch := make([]complex128, tc.n)
		if err := pp.Forward(got, src, tc.off, scratch); err != nil {
			t.Fatal(err)
		}
		if d := maxDiff(got, want); d > 1e-9 {
			t.Errorf("n=%d k=%d off=%d: diff %g", tc.n, tc.k, tc.off, d)
		}
	}
}

func TestPrunedPlanErrors(t *testing.T) {
	if _, err := NewPrunedPlan(100, 8); err == nil {
		t.Error("non-pow2 n should fail")
	}
	if _, err := NewPrunedPlan(64, 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := NewPrunedPlan(64, 65); err == nil {
		t.Error("k>n should fail")
	}
	pp, _ := NewPrunedPlan(64, 8)
	dst := make([]complex128, 64)
	scratch := make([]complex128, 64)
	if err := pp.Forward(dst[:10], make([]complex128, 8), 0, scratch); err == nil {
		t.Error("short dst should fail")
	}
	if err := pp.Forward(dst, make([]complex128, 9), 0, scratch); err == nil {
		t.Error("src longer than k should fail")
	}
	if err := pp.Forward(dst, make([]complex128, 8), 60, scratch); err == nil {
		t.Error("support past end should fail")
	}
	if err := pp.Forward(dst, make([]complex128, 8), -1, scratch); err == nil {
		t.Error("negative offset should fail")
	}
	if err := pp.Forward(dst, make([]complex128, 8), 0, make([]complex128, 2)); err == nil {
		t.Error("short scratch should fail")
	}
}

func TestPrunedFlopEstimateWins(t *testing.T) {
	pp, _ := NewPrunedPlan(2048, 32)
	pruned, full := pp.FlopEstimate()
	if pruned >= full {
		t.Errorf("pruned=%g should beat full=%g for k<<n", pruned, full)
	}
	// Degenerate case k == n: pruning cannot win.
	pp2, _ := NewPrunedPlan(64, 64)
	p2, f2 := pp2.FlopEstimate()
	if p2 < f2*0.9 {
		t.Errorf("k==n pruned=%g full=%g: no pruning win expected", p2, f2)
	}
}

func TestInverseSampled(t *testing.T) {
	n := 128
	p := MustPlan(n)
	x := randComplex(n, 3)
	spec := make([]complex128, n)
	if err := p.Forward(spec, x); err != nil {
		t.Fatal(err)
	}
	// Few indices → direct path.
	idx := []int{0, 1, 17, 64, 127}
	got, err := InverseSampled(p, spec, idx)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range idx {
		if d := absC(got[i] - x[j]); d > 1e-9 {
			t.Errorf("sample %d (idx %d): diff %g", i, j, d)
		}
	}
	// Many indices → full-transform path.
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	got, err = InverseSampled(p, spec, all)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(got, x); d > 1e-10 {
		t.Errorf("full-path diff %g", d)
	}
}

func TestInverseSampledErrors(t *testing.T) {
	p := MustPlan(16)
	spec := make([]complex128, 16)
	if _, err := InverseSampled(p, spec[:4], []int{0}); err == nil {
		t.Error("short spectrum should fail")
	}
	if _, err := InverseSampled(p, spec, []int{16}); err == nil {
		t.Error("index out of range should fail")
	}
	if _, err := InverseSampled(p, spec, []int{-1}); err == nil {
		t.Error("negative index should fail")
	}
}

func absC(c complex128) float64 {
	re, im := real(c), imag(c)
	if re < 0 {
		re = -re
	}
	if im < 0 {
		im = -im
	}
	if re > im {
		return re + im // cheap upper bound is fine for tests against tolerances
	}
	return im + re
}

func BenchmarkPrunedVsPadded(b *testing.B) {
	n, k := 2048, 32
	pp, _ := NewPrunedPlan(n, k)
	full := MustPlan(n)
	src := randComplex(k, 1)
	dst := make([]complex128, n)
	scratch := make([]complex128, n)
	b.Run("pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := pp.Forward(dst, src, 512, scratch); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("padded", func(b *testing.B) {
		padded := make([]complex128, n)
		for i := 0; i < b.N; i++ {
			for j := range padded {
				padded[j] = 0
			}
			copy(padded[512:], src)
			if err := full.Forward(dst, padded); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkPlan1D(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		p := MustPlan(n)
		x := randComplex(n, int64(n))
		y := make([]complex128, n)
		b.Run(p2s(n), func(b *testing.B) {
			b.SetBytes(int64(16 * n))
			for i := 0; i < b.N; i++ {
				if err := p.Forward(y, x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func p2s(n int) string {
	switch n {
	case 256:
		return "n256"
	case 1024:
		return "n1024"
	case 4096:
		return "n4096"
	}
	return "n"
}

var _ = rand.Int // keep math/rand imported for helpers above
