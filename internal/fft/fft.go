// Package fft is a from-scratch FFT library for lowcomm3d.
//
// It provides:
//
//   - 1D complex transforms of any length (iterative radix-2 for powers of
//     two, Bluestein's chirp-z algorithm otherwise) behind a reusable Plan;
//   - strided and batched execution for pencil/slab pipelines;
//   - 2D and 3D plans with optional parallel execution across lines;
//   - input-pruned forward transforms (transform decomposition) exploiting
//     contiguous zero structure, the "padding applied to the 1D data, not
//     the full 3D array" idea of the paper (§3.1);
//   - output-sampled inverse transforms for compression pipelines.
//
// Convention: Forward is unnormalized (e^{-2πi nk/N}); Inverse applies the
// 1/N factor, so Inverse(Forward(x)) == x up to round-off. Multi-d plans
// apply 1/N per axis on the inverse.
package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// Plan holds precomputed tables for 1D transforms of a fixed length.
// A Plan is safe for concurrent use by multiple goroutines as long as each
// call operates on distinct data (the tables are read-only after creation);
// methods that need scratch space allocate it per call or accept caller
// scratch.
type Plan struct {
	n    int
	pow2 bool
	perm []int32      // bit-reversal permutation (pow2 only)
	tw   []complex128 // tw[j] = exp(-2πi j/n), j < n/2 (pow2 only)
	bs   *bluestein   // non-pow2 lengths
}

// NewPlan creates a plan for transforms of length n ≥ 1.
func NewPlan(n int) (*Plan, error) {
	if n < 1 {
		return nil, fmt.Errorf("fft: length %d must be ≥ 1", n)
	}
	p := &Plan{n: n, pow2: n&(n-1) == 0}
	if p.pow2 {
		p.perm = bitRevPerm(n)
		p.tw = make([]complex128, n/2)
		for j := range p.tw {
			s, c := math.Sincos(-2 * math.Pi * float64(j) / float64(n))
			p.tw[j] = complex(c, s)
		}
	} else {
		var err error
		p.bs, err = newBluestein(n)
		if err != nil {
			return nil, err
		}
	}
	return p, nil
}

// MustPlan is NewPlan that panics on error; for use with known-good sizes.
func MustPlan(n int) *Plan {
	p, err := NewPlan(n)
	if err != nil {
		panic(err)
	}
	return p
}

// N returns the transform length.
func (p *Plan) N() int { return p.n }

// Forward computes the unnormalized DFT of src into dst (dst and src may
// alias). Both must have length N.
func (p *Plan) Forward(dst, src []complex128) error {
	return p.transform(dst, src, false)
}

// Inverse computes the normalized (1/N) inverse DFT of src into dst.
func (p *Plan) Inverse(dst, src []complex128) error {
	return p.transform(dst, src, true)
}

func (p *Plan) transform(dst, src []complex128, inverse bool) error {
	if len(dst) != p.n || len(src) != p.n {
		return fmt.Errorf("fft: length mismatch: plan %d, dst %d, src %d", p.n, len(dst), len(src))
	}
	if p.pow2 {
		p.pow2Transform(dst, src, inverse)
	} else {
		p.bs.transform(dst, src, inverse)
	}
	return nil
}

// pow2Transform runs the iterative radix-2 DIT algorithm.
func (p *Plan) pow2Transform(dst, src []complex128, inverse bool) {
	n := p.n
	// Bit-reversal copy (handles aliasing because perm is an involution
	// applied as a gather only when dst != src; for aliasing use swaps).
	if &dst[0] == &src[0] {
		for i, j := range p.perm {
			if int(j) > i {
				dst[i], dst[j] = dst[j], dst[i]
			}
		}
	} else {
		for i, j := range p.perm {
			dst[i] = src[j]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			tj := 0
			for j := start; j < start+half; j++ {
				w := p.tw[tj]
				if inverse {
					w = complex(real(w), -imag(w))
				}
				t := w * dst[j+half]
				dst[j+half] = dst[j] - t
				dst[j] = dst[j] + t
				tj += step
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range dst {
			dst[i] *= inv
		}
	}
}

func bitRevPerm(n int) []int32 {
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(bits.Reverse64(uint64(i)) >> shift)
	}
	return perm
}

// ForwardStrided computes the forward DFT of the length-N strided sequence
// data[off], data[off+stride], ... in place, using the caller's scratch
// buffer (length ≥ N). Gather/scatter keeps the hot transform contiguous.
func (p *Plan) ForwardStrided(data []complex128, off, stride int, scratch []complex128) error {
	return p.strided(data, off, stride, scratch, false)
}

// InverseStrided is the inverse-transform counterpart of ForwardStrided.
func (p *Plan) InverseStrided(data []complex128, off, stride int, scratch []complex128) error {
	return p.strided(data, off, stride, scratch, true)
}

func (p *Plan) strided(data []complex128, off, stride int, scratch []complex128, inverse bool) error {
	if stride <= 0 {
		return fmt.Errorf("fft: stride %d must be positive", stride)
	}
	last := off + (p.n-1)*stride
	if off < 0 || last >= len(data) {
		return fmt.Errorf("fft: strided range [%d:%d] outside data length %d", off, last, len(data))
	}
	if len(scratch) < p.n {
		return fmt.Errorf("fft: scratch length %d < %d", len(scratch), p.n)
	}
	s := scratch[:p.n]
	for i := 0; i < p.n; i++ {
		s[i] = data[off+i*stride]
	}
	if err := p.transform(s, s, inverse); err != nil {
		return err
	}
	for i := 0; i < p.n; i++ {
		data[off+i*stride] = s[i]
	}
	return nil
}

// DFTDirect computes the unnormalized DFT by the O(n²) definition. It is
// the correctness reference used by tests and is exported so higher-level
// packages can validate against it too.
func DFTDirect(src []complex128) []complex128 {
	n := len(src)
	dst := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k*t%n) / float64(n)
			s, c := math.Sincos(ang)
			sum += src[t] * complex(c, s)
		}
		dst[k] = sum
	}
	return dst
}
