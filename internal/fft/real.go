package fft

import (
	"fmt"
	"math"
)

// RealPlan computes DFTs of real sequences of even length n using the
// classic half-length complex packing: the n real samples are packed into
// n/2 complex values, transformed with one half-length FFT, and unpacked
// into the n/2+1 independent spectrum coefficients. This is the r2c/c2r
// split the paper's pipeline uses (Fig. 5: fftx_plan_guru_dft_r2c /
// _c2r) and halves the transform memory relative to a complex transform
// of padded real data.
type RealPlan struct {
	n    int
	half *Plan
	w    []complex128 // e^{-2πik/n}, k ≤ n/2
}

// NewRealPlan creates a plan for real transforms of even length n ≥ 2.
func NewRealPlan(n int) (*RealPlan, error) {
	if n < 2 || n%2 != 0 {
		return nil, fmt.Errorf("fft: real plan requires even n ≥ 2, got %d", n)
	}
	half, err := NewPlan(n / 2)
	if err != nil {
		return nil, err
	}
	w := make([]complex128, n/2+1)
	for k := range w {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		w[k] = complex(c, s)
	}
	return &RealPlan{n: n, half: half, w: w}, nil
}

// N returns the real sequence length.
func (p *RealPlan) N() int { return p.n }

// SpectrumLen returns the number of independent complex coefficients,
// n/2 + 1 (the remaining half follows from Hermitian symmetry).
func (p *RealPlan) SpectrumLen() int { return p.n/2 + 1 }

// Forward computes the unnormalized DFT of the real sequence src into the
// half spectrum dst: dst[k] = X[k] for k = 0..n/2.
func (p *RealPlan) Forward(dst []complex128, src []float64) error {
	if len(src) != p.n {
		return fmt.Errorf("fft: real src length %d != %d", len(src), p.n)
	}
	if len(dst) != p.SpectrumLen() {
		return fmt.Errorf("fft: spectrum length %d != %d", len(dst), p.SpectrumLen())
	}
	h := p.n / 2
	z := make([]complex128, h)
	for j := 0; j < h; j++ {
		z[j] = complex(src[2*j], src[2*j+1])
	}
	if err := p.half.Forward(z, z); err != nil {
		return err
	}
	// Unpack: with E, O the DFTs of the even/odd subsequences,
	// Z[k] = E[k] + i·O[k] and conj(Z[h−k]) = E[k] − i·O[k], so
	// X[k] = E[k] + w^k·O[k].
	zAt := func(k int) complex128 { return z[k%h] }
	for k := 0; k <= h; k++ {
		zk := zAt(k)
		zc := conj(zAt((h - k) % h))
		e := (zk + zc) / 2
		o := (zk - zc) / complex(0, 2)
		dst[k] = e + p.w[k]*o
	}
	return nil
}

// Inverse computes the normalized (1/n) inverse DFT of the half spectrum
// src (length n/2+1, Hermitian-extended implicitly) into the real
// sequence dst.
func (p *RealPlan) Inverse(dst []float64, src []complex128) error {
	if len(dst) != p.n {
		return fmt.Errorf("fft: real dst length %d != %d", len(dst), p.n)
	}
	if len(src) != p.SpectrumLen() {
		return fmt.Errorf("fft: spectrum length %d != %d", len(src), p.SpectrumLen())
	}
	h := p.n / 2
	z := make([]complex128, h)
	for k := 0; k < h; k++ {
		xk := src[k]
		xc := conj(src[h-k])
		e := (xk + xc) / 2
		// O[k] = (X[k] − conj(X[h−k]))·w^{-k}/2.
		o := (xk - xc) * conj(p.w[k]) / 2
		z[k] = e + complex(0, 1)*o
	}
	if err := p.half.Inverse(z, z); err != nil {
		return err
	}
	for j := 0; j < h; j++ {
		dst[2*j] = real(z[j])
		dst[2*j+1] = imag(z[j])
	}
	return nil
}

// FullSpectrum expands a half spectrum to the full n coefficients via
// Hermitian symmetry X[n−k] = conj(X[k]) — a bridge to code paths that
// expect dense complex spectra.
func (p *RealPlan) FullSpectrum(dst, half []complex128) error {
	if len(dst) != p.n {
		return fmt.Errorf("fft: full spectrum length %d != %d", len(dst), p.n)
	}
	if len(half) != p.SpectrumLen() {
		return fmt.Errorf("fft: half spectrum length %d != %d", len(half), p.SpectrumLen())
	}
	copy(dst, half)
	for k := p.n/2 + 1; k < p.n; k++ {
		dst[k] = conj(half[p.n-k])
	}
	return nil
}

func conj(c complex128) complex128 { return complex(real(c), -imag(c)) }
