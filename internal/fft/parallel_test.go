package fft

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"lowcomm3d/internal/obs"
)

// TestParallelForSpannedEarlyBailEndsAllSpans pins the FirstError
// early-bail contract: when one worker records an error and its siblings
// bail out, every spawned worker goroutine must still End its span —
// a span is only recorded into the trace at End, so a leaked (unended)
// span silently drops a worker lane from the Chrome trace and skews any
// imbalance analysis of the run that failed.
func TestParallelForSpannedEarlyBailEndsAllSpans(t *testing.T) {
	const workers, n = 4, 64
	tr := obs.New()
	root := tr.Start("test.root")
	var ec FirstError
	boom := errors.New("boom")
	var calls atomic.Int64
	ParallelForSpanned(root, "test.worker", n, workers, func(w, i int) {
		calls.Add(1)
		if ec.Failed() {
			return // early bail: siblings stop doing work...
		}
		if i == 1 {
			ec.Record(fmt.Errorf("item %d: %w", i, boom))
		}
	})
	root.End()

	if err := ec.Err(); !errors.Is(err, boom) {
		t.Fatalf("FirstError.Err() = %v, want wrapped boom", err)
	}
	if c := calls.Load(); c < workers || c > n {
		t.Errorf("worker calls = %d, want within [%d, %d]", c, workers, n)
	}
	got := 0
	for _, sp := range tr.Spans() {
		if sp.Name != "test.worker" {
			continue
		}
		got++
		if sp.Track < 1 || sp.Track > workers {
			t.Errorf("worker span on track %d, want 1..%d", sp.Track, workers)
		}
		if sp.Dur < 0 {
			t.Errorf("worker span has negative duration %v", sp.Dur)
		}
	}
	// ...but every worker lane still gets recorded: presence in Spans()
	// proves End ran, since spans are recorded only on End.
	if got != workers {
		t.Errorf("recorded %d worker spans after early bail, want %d", got, workers)
	}
}

// TestParallelForSpannedNilParent pins the nil-trace degradation: with no
// parent span the loop must still visit every index exactly once.
func TestParallelForSpannedNilParent(t *testing.T) {
	const n = 37
	var seen [n]atomic.Int32
	ParallelForSpanned(nil, "unused", n, 3, func(w, i int) { seen[i].Add(1) })
	for i := range seen {
		if v := seen[i].Load(); v != 1 {
			t.Fatalf("index %d visited %d times, want 1", i, v)
		}
	}
}
