package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"lowcomm3d/internal/grid"
)

func randField(d grid.Dim3, seed int64) *grid.ComplexField {
	rng := rand.New(rand.NewSource(seed))
	f := grid.NewComplexField(d)
	for i := range f.Data {
		f.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return f
}

// dft3Direct computes the 3D DFT by definition — O(n⁶), tiny grids only.
func dft3Direct(f *grid.ComplexField) *grid.ComplexField {
	d := f.Dim
	out := grid.NewComplexField(d)
	for kz := 0; kz < d.Nz; kz++ {
		for ky := 0; ky < d.Ny; ky++ {
			for kx := 0; kx < d.Nx; kx++ {
				var sum complex128
				for z := 0; z < d.Nz; z++ {
					for y := 0; y < d.Ny; y++ {
						for x := 0; x < d.Nx; x++ {
							ang := -2 * math.Pi * (float64(kx*x)/float64(d.Nx) +
								float64(ky*y)/float64(d.Ny) +
								float64(kz*z)/float64(d.Nz))
							sum += f.At(x, y, z) * cmplx.Exp(complex(0, ang))
						}
					}
				}
				out.Set(kx, ky, kz, sum)
			}
		}
	}
	return out
}

func maxFieldDiff(a, b *grid.ComplexField) float64 {
	m := 0.0
	for i := range a.Data {
		if d := cmplx.Abs(a.Data[i] - b.Data[i]); d > m {
			m = d
		}
	}
	return m
}

func TestPlan3DMatchesDirect(t *testing.T) {
	for _, d := range []grid.Dim3{
		{Nx: 4, Ny: 4, Nz: 4},
		{Nx: 8, Ny: 4, Nz: 2},
		{Nx: 3, Ny: 5, Nz: 4}, // mixed radix: Bluestein on two axes
		{Nx: 6, Ny: 6, Nz: 6},
	} {
		p, err := NewPlan3D(d, 0)
		if err != nil {
			t.Fatal(err)
		}
		f := randField(d, 42)
		want := dft3Direct(f)
		if err := p.Forward(f); err != nil {
			t.Fatal(err)
		}
		if diff := maxFieldDiff(f, want); diff > 1e-9 {
			t.Errorf("dims %v: max diff %g", d, diff)
		}
	}
}

func TestPlan3DRoundTrip(t *testing.T) {
	for _, d := range []grid.Dim3{{Nx: 8, Ny: 8, Nz: 8}, {Nx: 16, Ny: 8, Nz: 4}, {Nx: 5, Ny: 6, Nz: 7}, {Nx: 32, Ny: 32, Nz: 32}} {
		p, err := NewPlan3D(d, 0)
		if err != nil {
			t.Fatal(err)
		}
		f := randField(d, 7)
		orig := f.Clone()
		if err := p.Forward(f); err != nil {
			t.Fatal(err)
		}
		if err := p.Inverse(f); err != nil {
			t.Fatal(err)
		}
		if diff := maxFieldDiff(f, orig); diff > 1e-10 {
			t.Errorf("dims %v: round-trip diff %g", d, diff)
		}
	}
}

func TestPlan3DSeparability(t *testing.T) {
	// A separable product f(x,y,z) = a(x)b(y)c(z) transforms to
	// Â(kx)·B̂(ky)·Ĉ(kz).
	d := grid.Dim3{Nx: 8, Ny: 8, Nz: 8}
	a := randComplex(8, 1)
	bb := randComplex(8, 2)
	c := randComplex(8, 3)
	f := grid.NewComplexField(d)
	for z := 0; z < 8; z++ {
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				f.Set(x, y, z, a[x]*bb[y]*c[z])
			}
		}
	}
	p1 := MustPlan(8)
	fa := make([]complex128, 8)
	fb := make([]complex128, 8)
	fc := make([]complex128, 8)
	if err := p1.Forward(fa, a); err != nil {
		t.Fatal(err)
	}
	if err := p1.Forward(fb, bb); err != nil {
		t.Fatal(err)
	}
	if err := p1.Forward(fc, c); err != nil {
		t.Fatal(err)
	}
	p3, _ := NewPlan3D(d, 0)
	if err := p3.Forward(f); err != nil {
		t.Fatal(err)
	}
	for z := 0; z < 8; z++ {
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				want := fa[x] * fb[y] * fc[z]
				if cmplx.Abs(f.At(x, y, z)-want) > 1e-9 {
					t.Fatalf("separability violated at (%d,%d,%d)", x, y, z)
				}
			}
		}
	}
}

func TestPlan3DDimMismatch(t *testing.T) {
	p, _ := NewPlan3D(grid.Dim3{Nx: 4, Ny: 4, Nz: 4}, 1)
	f := grid.NewComplexField(grid.Dim3{Nx: 8, Ny: 4, Nz: 4})
	if err := p.Forward(f); err == nil {
		t.Error("dim mismatch should fail")
	}
}

func TestPlan3DWorkerCountsAgree(t *testing.T) {
	d := grid.Dim3{Nx: 16, Ny: 16, Nz: 16}
	f1 := randField(d, 12)
	f4 := f1.Clone()
	p1, _ := NewPlan3D(d, 1)
	p4, _ := NewPlan3D(d, 4)
	if err := p1.Forward(f1); err != nil {
		t.Fatal(err)
	}
	if err := p4.Forward(f4); err != nil {
		t.Fatal(err)
	}
	if diff := maxFieldDiff(f1, f4); diff > 1e-12 {
		t.Errorf("parallel execution changed result by %g", diff)
	}
}

func TestPlan2DMatches3DPlane(t *testing.T) {
	// A 2D transform of a plane must equal the (x,y) part of a 3D
	// transform with Nz=1.
	nx, ny := 8, 16
	p2, err := NewPlan2D(nx, ny, 0)
	if err != nil {
		t.Fatal(err)
	}
	plane := randComplex(nx*ny, 21)
	want := grid.NewComplexField(grid.Dim3{Nx: nx, Ny: ny, Nz: 1})
	copy(want.Data, plane)
	p3, _ := NewPlan3D(grid.Dim3{Nx: nx, Ny: ny, Nz: 1}, 0)
	if err := p3.Forward(want); err != nil {
		t.Fatal(err)
	}
	if err := p2.ForwardPlane(plane); err != nil {
		t.Fatal(err)
	}
	for i := range plane {
		if cmplx.Abs(plane[i]-want.Data[i]) > 1e-10 {
			t.Fatalf("plane mismatch at %d", i)
		}
	}
	// Round trip through the 2D inverse.
	if err := p2.InversePlane(plane); err != nil {
		t.Fatal(err)
	}
}

func TestPlan2DErrors(t *testing.T) {
	if _, err := NewPlan2D(0, 4, 1); err == nil {
		t.Error("zero nx should fail")
	}
	p, _ := NewPlan2D(4, 4, 1)
	if err := p.ForwardPlane(make([]complex128, 3)); err == nil {
		t.Error("short plane should fail")
	}
}

func TestParallelFor(t *testing.T) {
	n := 1000
	hits := make([]int32, n)
	ParallelFor(n, 8, func(w, i int) { hits[i]++ })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
	// Degenerate cases.
	count := 0
	ParallelFor(3, 0, func(w, i int) { count++ })
	if count != 3 {
		t.Errorf("auto workers visited %d", count)
	}
	ParallelFor(0, 4, func(w, i int) { t.Error("must not be called") })
}

func BenchmarkPlan3DForward(b *testing.B) {
	for _, n := range []int{32, 64} {
		d := grid.Cube(n)
		p, _ := NewPlan3D(d, 0)
		f := randField(d, 5)
		b.Run(d.String(), func(b *testing.B) {
			b.SetBytes(int64(16 * d.Len()))
			for i := 0; i < b.N; i++ {
				if err := p.Forward(f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
