package fft

import (
	"fmt"
	"math"
)

// bluestein implements the chirp-z algorithm, computing arbitrary-length
// DFTs via a power-of-two circular convolution:
//
//	X_k = w_k · (u ⊛ v)_k,  w_k = e^{-iπk²/n},  u_t = x_t·w_t,
//	v_t = e^{+iπt²/n} (two-sided, wrapped into the padded buffer).
type bluestein struct {
	n    int
	m    int // power-of-two convolution length ≥ 2n-1
	sub  *Plan
	w    []complex128 // chirp w_k, k < n
	vhat []complex128 // forward FFT of wrapped conj-chirp, length m
}

func newBluestein(n int) (*bluestein, error) {
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	sub, err := NewPlan(m)
	if err != nil {
		return nil, fmt.Errorf("fft: bluestein sub-plan: %w", err)
	}
	b := &bluestein{n: n, m: m, sub: sub}
	b.w = make([]complex128, n)
	for k := 0; k < n; k++ {
		// Use k² mod 2n to keep the angle argument small and accurate.
		q := (k * k) % (2 * n)
		s, c := math.Sincos(-math.Pi * float64(q) / float64(n))
		b.w[k] = complex(c, s)
	}
	v := make([]complex128, m)
	for t := 0; t < n; t++ {
		cw := complex(real(b.w[t]), -imag(b.w[t])) // conj chirp
		v[t] = cw
		if t > 0 {
			v[m-t] = cw
		}
	}
	if err := sub.Forward(v, v); err != nil {
		return nil, err
	}
	b.vhat = v
	return b, nil
}

func (b *bluestein) transform(dst, src []complex128, inverse bool) {
	u := make([]complex128, b.m)
	if inverse {
		// Inverse via conjugation: IDFT(x) = conj(DFT(conj(x)))/n.
		for t := 0; t < b.n; t++ {
			u[t] = complex(real(src[t]), -imag(src[t])) * b.w[t]
		}
	} else {
		for t := 0; t < b.n; t++ {
			u[t] = src[t] * b.w[t]
		}
	}
	// Convolution with the fixed chirp kernel.
	if err := b.sub.Forward(u, u); err != nil {
		panic(err) // lengths are internally consistent
	}
	for i := range u {
		u[i] *= b.vhat[i]
	}
	if err := b.sub.Inverse(u, u); err != nil {
		panic(err)
	}
	if inverse {
		inv := 1 / float64(b.n)
		for k := 0; k < b.n; k++ {
			y := u[k] * b.w[k]
			dst[k] = complex(real(y)*inv, -imag(y)*inv)
		}
	} else {
		for k := 0; k < b.n; k++ {
			dst[k] = u[k] * b.w[k]
		}
	}
}
