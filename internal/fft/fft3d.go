package fft

import (
	"fmt"
	"sync"

	"lowcomm3d/internal/grid"
	"lowcomm3d/internal/obs"
)

// Plan3D performs in-place 3D transforms on a grid.ComplexField by
// sweeping 1D transforms along each axis (the classical pencil
// decomposition: an N×N×N transform is N² 1D transforms per axis).
// Lines are processed in parallel across Workers goroutines.
type Plan3D struct {
	dim        grid.Dim3
	px, py, pz *Plan
	workers    int
	trace      *obs.Trace
	hx, hy, hz *obs.Histogram // per-axis sweep latency, cached by SetTrace
}

// NewPlan3D creates a 3D plan for fields of dimensions d. workers ≤ 0
// selects GOMAXPROCS.
func NewPlan3D(d grid.Dim3, workers int) (*Plan3D, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("fft: empty dimensions %v", d)
	}
	px, err := NewPlan(d.Nx)
	if err != nil {
		return nil, err
	}
	py := px
	if d.Ny != d.Nx {
		if py, err = NewPlan(d.Ny); err != nil {
			return nil, err
		}
	}
	pz := px
	switch {
	case d.Nz == d.Nx:
		pz = px
	case d.Nz == d.Ny:
		pz = py
	default:
		if pz, err = NewPlan(d.Nz); err != nil {
			return nil, err
		}
	}
	return &Plan3D{dim: d, px: px, py: py, pz: pz, workers: Workers(workers)}, nil
}

// Dim returns the plan's field dimensions.
func (p *Plan3D) Dim() grid.Dim3 { return p.dim }

// SetTrace attaches an observability trace: each Forward/Inverse records
// one span per axis sweep plus per-worker line spans, accumulates the
// 5·N·log₂N FLOP model in "fft.flops_model", and feeds per-axis sweep
// latency histograms ("fft.sweep_x/y/z_seconds"). A nil trace disables
// recording (the default).
func (p *Plan3D) SetTrace(t *obs.Trace) {
	p.trace = t
	p.hx = t.Histogram("fft.sweep_x_seconds")
	p.hy = t.Histogram("fft.sweep_y_seconds")
	p.hz = t.Histogram("fft.sweep_z_seconds")
}

// Forward transforms f in place (unnormalized).
func (p *Plan3D) Forward(f *grid.ComplexField) error { return p.run(f, false) }

// Inverse transforms f in place, applying 1/N per axis.
func (p *Plan3D) Inverse(f *grid.ComplexField) error { return p.run(f, true) }

func (p *Plan3D) run(f *grid.ComplexField, inverse bool) error {
	if f.Dim != p.dim {
		return fmt.Errorf("fft: field dims %v != plan dims %v", f.Dim, p.dim)
	}
	d := p.dim
	data := f.Data
	maxN := d.Nx
	if d.Ny > maxN {
		maxN = d.Ny
	}
	if d.Nz > maxN {
		maxN = d.Nz
	}
	scratch := make([][]complex128, p.workers)
	for w := range scratch {
		scratch[w] = make([]complex128, maxN)
	}
	var ec FirstError
	dir := "fft3d.forward"
	if inverse {
		dir = "fft3d.inverse"
	}
	root := p.trace.Start(dir)
	defer root.End()
	p.trace.Counter("fft.flops_model").Add(
		int64(d.Ny*d.Nz)*obs.FFTFlops(d.Nx) +
			int64(d.Nx*d.Nz)*obs.FFTFlops(d.Ny) +
			int64(d.Nx*d.Ny)*obs.FFTFlops(d.Nz))

	// X axis: contiguous lines, one per (y, z).
	ax := root.Start(dir + ".x")
	ParallelForSpanned(ax, dir+".x.worker", d.Ny*d.Nz, p.workers, func(w, i int) {
		base := i * d.Nx
		line := data[base : base+d.Nx]
		if inverse {
			ec.Record(p.px.Inverse(line, line))
		} else {
			ec.Record(p.px.Forward(line, line))
		}
	})
	p.hx.Observe(ax.End())
	if err := ec.Err(); err != nil {
		return err
	}
	// Y axis: stride Nx, one line per (x, z).
	ay := root.Start(dir + ".y")
	ParallelForSpanned(ay, dir+".y.worker", d.Nx*d.Nz, p.workers, func(w, i int) {
		x := i % d.Nx
		z := i / d.Nx
		off := x + d.Nx*d.Ny*z
		if inverse {
			ec.Record(p.py.InverseStrided(data, off, d.Nx, scratch[w]))
		} else {
			ec.Record(p.py.ForwardStrided(data, off, d.Nx, scratch[w]))
		}
	})
	p.hy.Observe(ay.End())
	if err := ec.Err(); err != nil {
		return err
	}
	// Z axis: stride Nx·Ny, one line per (x, y).
	az := root.Start(dir + ".z")
	ParallelForSpanned(az, dir+".z.worker", d.Nx*d.Ny, p.workers, func(w, i int) {
		if inverse {
			ec.Record(p.pz.InverseStrided(data, i, d.Nx*d.Ny, scratch[w]))
		} else {
			ec.Record(p.pz.ForwardStrided(data, i, d.Nx*d.Ny, scratch[w]))
		}
	})
	p.hz.Observe(az.End())
	return ec.Err()
}

// Plan2D performs in-place 2D (x, y) transforms on every z-plane of a
// complex field, or on a single plane slice. It is the first stage of the
// paper's local pipeline: "the small domain undergoes a 2D transform to a
// slab".
type Plan2D struct {
	nx, ny  int
	px, py  *Plan
	workers int

	// scratch pools the single column-pass line buffer of the serial path,
	// so repeated plane transforms (a serving engine's steady state) do no
	// per-call heap allocation. The parallel path still allocates its
	// per-worker scratch per call — goroutine spawns dominate there anyway.
	scratch sync.Pool
}

// NewPlan2D creates a 2D plan for nx×ny planes.
func NewPlan2D(nx, ny, workers int) (*Plan2D, error) {
	if nx < 1 || ny < 1 {
		return nil, fmt.Errorf("fft: invalid plane dims %dx%d", nx, ny)
	}
	px, err := NewPlan(nx)
	if err != nil {
		return nil, err
	}
	py := px
	if ny != nx {
		if py, err = NewPlan(ny); err != nil {
			return nil, err
		}
	}
	p := &Plan2D{nx: nx, ny: ny, px: px, py: py, workers: Workers(workers)}
	p.scratch.New = func() any {
		s := make([]complex128, ny)
		return &s
	}
	return p, nil
}

// ForwardPlane transforms one nx×ny plane (row-major, x fastest) in place.
func (p *Plan2D) ForwardPlane(plane []complex128) error { return p.plane(plane, false) }

// InversePlane inverse-transforms one plane in place (1/(nx·ny) applied).
func (p *Plan2D) InversePlane(plane []complex128) error { return p.plane(plane, true) }

func (p *Plan2D) plane(plane []complex128, inverse bool) error {
	if len(plane) != p.nx*p.ny {
		return fmt.Errorf("fft: plane length %d != %d", len(plane), p.nx*p.ny)
	}
	if p.workers <= 1 {
		return p.planeSerial(plane, inverse)
	}
	var ec FirstError
	scratch := make([][]complex128, p.workers)
	for w := range scratch {
		scratch[w] = make([]complex128, p.ny)
	}
	ParallelFor(p.ny, p.workers, func(w, y int) {
		row := plane[y*p.nx : (y+1)*p.nx]
		if inverse {
			ec.Record(p.px.Inverse(row, row))
		} else {
			ec.Record(p.px.Forward(row, row))
		}
	})
	if err := ec.Err(); err != nil {
		return err
	}
	ParallelFor(p.nx, p.workers, func(w, x int) {
		if inverse {
			ec.Record(p.py.InverseStrided(plane, x, p.nx, scratch[w]))
		} else {
			ec.Record(p.py.ForwardStrided(plane, x, p.nx, scratch[w]))
		}
	})
	return ec.Err()
}

// planeSerial is the single-worker plane transform: one pooled scratch
// line, no goroutines, no per-call allocation.
func (p *Plan2D) planeSerial(plane []complex128, inverse bool) error {
	sp := p.scratch.Get().(*[]complex128)
	defer p.scratch.Put(sp)
	for y := 0; y < p.ny; y++ {
		row := plane[y*p.nx : (y+1)*p.nx]
		var err error
		if inverse {
			err = p.px.Inverse(row, row)
		} else {
			err = p.px.Forward(row, row)
		}
		if err != nil {
			return err
		}
	}
	for x := 0; x < p.nx; x++ {
		var err error
		if inverse {
			err = p.py.InverseStrided(plane, x, p.nx, *sp)
		} else {
			err = p.py.ForwardStrided(plane, x, p.nx, *sp)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
