// Command genfuzzcorpus regenerates the checked-in seed corpora under
// internal/*/testdata/fuzz/. The corpus mirrors (and extends) the f.Add
// seeds so `go test` exercises them on every run and `go test -fuzz`
// starts from structurally interesting inputs — including genuine binary
// WriteTo/WriteTo32 streams that are impractical to hand-write.
//
// Run from the repo root: go run ./cmd/genfuzzcorpus
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"lowcomm3d/internal/ckpt"
	"lowcomm3d/internal/grid"
	"lowcomm3d/internal/octree"
	"lowcomm3d/internal/sample"
	"lowcomm3d/internal/wire"
)

// entry renders one fuzz-corpus value line (go test fuzz v1 format).
func entry(v any) string {
	switch x := v.(type) {
	case int:
		return fmt.Sprintf("int(%d)", x)
	case []byte:
		return fmt.Sprintf("[]byte(%s)", strconv.Quote(string(x)))
	default:
		log.Fatalf("unsupported corpus value type %T", v)
		return ""
	}
}

func writeSeed(dir, name string, values ...any) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	buf.WriteString("go test fuzz v1\n")
	for _, v := range values {
		buf.WriteString(entry(v))
		buf.WriteByte('\n')
	}
	if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
		log.Fatal(err)
	}
}

// fixHeaderCRC restamps a wire frame's header CRC after a field edit (the
// forged-length seed must pass header validation to reach the payload
// read path).
func fixHeaderCRC(frame []byte) {
	crc := crc32.Checksum(frame[:16], crc32.MakeTable(crc32.Castagnoli))
	binary.LittleEndian.PutUint32(frame[16:], crc)
}

func metaBytes(meta []int32) []byte {
	raw := make([]byte, 4*len(meta))
	for i, m := range meta {
		binary.LittleEndian.PutUint32(raw[4*i:], uint32(m))
	}
	return raw
}

func main() {
	// FuzzFFTRoundTrip(n int, data []byte)
	fftDir := filepath.Join("internal", "fft", "testdata", "fuzz", "FuzzFFTRoundTrip")
	writeSeed(fftDir, "seed-pow2", 8, []byte{1, 2, 3, 4})
	writeSeed(fftDir, "seed-bluestein-prime", 7, []byte{0xff, 0x00, 0x7f})
	writeSeed(fftDir, "seed-large-prime", 127, []byte{3, 1, 4, 1, 5, 9, 2, 6})
	writeSeed(fftDir, "seed-composite", 48, []byte{0xaa, 0x55, 0xaa, 0x55})
	writeSeed(fftDir, "seed-length-one", 1, []byte{42})

	// FuzzOctreeMetaCodec(n int, totalSamples int, metaBytes []byte)
	octDir := filepath.Join("internal", "octree", "testdata", "fuzz", "FuzzOctreeMetaCodec")
	near := grid.BoxAt(grid.Point{0, 0, 0}, 8, 8, 8)
	tree, err := octree.Build(grid.Cube(16), func(b grid.Box) int {
		if b.Hi[0]-b.Lo[0] > 8 {
			return 0
		}
		if near.ContainsBox(b) {
			return 1
		}
		return 4
	})
	if err != nil {
		log.Fatal(err)
	}
	writeSeed(octDir, "seed-genuine", 16, tree.SampleCount(), metaBytes(tree.EncodeMeta()))
	writeSeed(octDir, "seed-single-cell", 8, 27, metaBytes([]int32{0, 0, 0, 1, 0}))
	writeSeed(octDir, "seed-negative-total", 4, -5, metaBytes([]int32{0, 0, 0, 1, 0}))
	writeSeed(octDir, "seed-huge-total", 1<<20, 1<<50, metaBytes([]int32{0, 0, 0, 1, 0}))
	corruptMeta := tree.EncodeMeta()
	corruptMeta[3] = 3 // non-power-of-two rate
	writeSeed(octDir, "seed-bad-rate", 16, tree.SampleCount(), metaBytes(corruptMeta))

	// FuzzCompressedIO(data []byte)
	smpDir := filepath.Join("internal", "sample", "testdata", "fuzz", "FuzzCompressedIO")
	utree, err := sample.Uniform{Rate: 2, CellSize: 8}.Tree(grid.Cube(16))
	if err != nil {
		log.Fatal(err)
	}
	c := sample.NewCompressed(utree)
	for i := range c.Samples {
		c.Samples[i] = float64(i)*0.25 - 3
	}
	var v64, v32 bytes.Buffer
	if _, err := c.WriteTo(&v64); err != nil {
		log.Fatal(err)
	}
	if _, err := c.WriteTo32(&v32); err != nil {
		log.Fatal(err)
	}
	writeSeed(smpDir, "seed-v64", v64.Bytes())
	writeSeed(smpDir, "seed-v32", v32.Bytes())
	writeSeed(smpDir, "seed-truncated-header", v64.Bytes()[:20])
	writeSeed(smpDir, "seed-truncated-payload", v64.Bytes()[:v64.Len()-3])
	lying := bytes.Clone(v64.Bytes())
	binary.LittleEndian.PutUint64(lying[16:], 1<<39) // forge a huge sample count
	writeSeed(smpDir, "seed-lying-count", lying)

	// FuzzCheckpointCodec(data []byte)
	ckptDir := filepath.Join("internal", "ckpt", "testdata", "fuzz", "FuzzCheckpointCodec")
	snap := &ckpt.Snapshot{Worker: 2, Iter: 5, Strain: make([][][]float64, 3)}
	for b := range snap.Strain {
		snap.Strain[b] = make([][]float64, grid.NumVoigt)
		for v := range snap.Strain[b] {
			data := make([]float64, 8)
			for i := range data {
				data[i] = float64(b*100+v*10+i) * 0.125
			}
			snap.Strain[b][v] = data
		}
	}
	var ck bytes.Buffer
	if _, err := ckpt.WriteSnapshot(&ck, snap); err != nil {
		log.Fatal(err)
	}
	writeSeed(ckptDir, "seed-genuine", ck.Bytes())
	writeSeed(ckptDir, "seed-truncated-header", ck.Bytes()[:22])
	writeSeed(ckptDir, "seed-truncated-payload", ck.Bytes()[:ck.Len()-5])
	// Header layout: magic(4) version(4) worker(4) iter(4) boxes(4)
	// comps(4) perBox(8) crc(8), then the float64 payload.
	lyingBoxes := bytes.Clone(ck.Bytes())
	binary.LittleEndian.PutUint32(lyingBoxes[16:], 1<<19) // claim far more boxes than the payload holds
	writeSeed(ckptDir, "seed-lying-boxes", lyingBoxes)
	hugePerBox := bytes.Clone(ck.Bytes())
	binary.LittleEndian.PutUint64(hugePerBox[24:], 1<<26) // forge a near-cap per-box count
	writeSeed(ckptDir, "seed-huge-perbox", hugePerBox)
	badCRC := bytes.Clone(ck.Bytes())
	binary.LittleEndian.PutUint64(badCRC[32:], 0xdeadbeefdeadbeef)
	writeSeed(ckptDir, "seed-bad-crc", badCRC)

	// FuzzWireFrameCodec(data []byte). Payloads are built by hand against
	// the documented little-endian message layouts (the encoders are
	// internal to the wire package); a drifting layout makes these seeds
	// less interesting, not wrong, since the fuzzer only needs plausible
	// structure to start from.
	wireDir := filepath.Join("internal", "wire", "testdata", "fuzz", "FuzzWireFrameCodec")
	le := binary.LittleEndian
	str := func(s string) []byte {
		b := make([]byte, 4, 4+len(s))
		le.PutUint32(b, uint32(len(s)))
		return append(b, s...)
	}
	var hello []byte
	hello = le.AppendUint32(hello, 1) // protocol version
	hello = append(hello, str("0123456789abcdef0123456789abcdef")...)
	writeSeed(wireDir, "seed-hello", wire.EncodeFrame(wire.FrameHello, hello))

	var submit []byte
	submit = le.AppendUint64(submit, 7)    // job id
	submit = le.AppendUint32(submit, 1500) // deadline ms
	submit = append(submit, str("tenant")...)
	for _, c := range []int64{1, 2, 3} { // box low corner
		submit = le.AppendUint64(submit, uint64(c))
	}
	submit = le.AppendUint32(submit, 1) // k
	submit = le.AppendUint32(submit, 1) // sample count (k^3)
	submit = le.AppendUint64(submit, 0x3ff0000000000000)
	writeSeed(wireDir, "seed-submit", wire.EncodeFrame(wire.FrameSubmit, submit))

	var chunk []byte
	chunk = le.AppendUint64(chunk, 7)          // job id
	chunk = le.AppendUint64(chunk, 0)          // offset
	chunk = le.AppendUint64(chunk, 11)         // total
	chunk = le.AppendUint32(chunk, 0xdeadbeef) // payload CRC (wrong on purpose)
	chunk = append(chunk, "hello world"...)
	writeSeed(wireDir, "seed-chunk", wire.EncodeFrame(wire.FrameChunk, chunk))

	var status []byte
	status = le.AppendUint64(status, 7) // job id
	status = append(status, 2, 0)       // code (overloaded-queue)
	status = le.AppendUint32(status, 250)
	status = append(status, str("queue full")...)
	writeSeed(wireDir, "seed-status", wire.EncodeFrame(wire.FrameStatus, status))

	writeSeed(wireDir, "seed-ping", wire.EncodeFrame(wire.FramePing, nil))
	two := wire.EncodeFrame(wire.FramePong, nil)
	two = append(two, wire.EncodeFrame(wire.FramePing, nil)...)
	writeSeed(wireDir, "seed-back-to-back", two)

	ack := wire.EncodeFrame(wire.FrameAck, le.AppendUint64(le.AppendUint64(nil, 7), 4096))
	writeSeed(wireDir, "seed-truncated", ack[:len(ack)-3])
	hugeLen := wire.EncodeFrame(wire.FramePing, nil)
	le.PutUint32(hugeLen[8:], wire.MaxFramePayload) // in-bounds length, no bytes behind it
	fixHeaderCRC(hugeLen)
	writeSeed(wireDir, "seed-forged-length", hugeLen)
	badPayload := wire.EncodeFrame(wire.FrameAck, le.AppendUint64(le.AppendUint64(nil, 7), 4096))
	badPayload[wire.HeaderSize] ^= 1
	writeSeed(wireDir, "seed-corrupt-payload", badPayload)

	fmt.Println("seed corpora written under internal/*/testdata/fuzz/")
}
