// Command genfuzzcorpus regenerates the checked-in seed corpora under
// internal/*/testdata/fuzz/. The corpus mirrors (and extends) the f.Add
// seeds so `go test` exercises them on every run and `go test -fuzz`
// starts from structurally interesting inputs — including genuine binary
// WriteTo/WriteTo32 streams that are impractical to hand-write.
//
// Run from the repo root: go run ./cmd/genfuzzcorpus
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"lowcomm3d/internal/ckpt"
	"lowcomm3d/internal/grid"
	"lowcomm3d/internal/octree"
	"lowcomm3d/internal/sample"
)

// entry renders one fuzz-corpus value line (go test fuzz v1 format).
func entry(v any) string {
	switch x := v.(type) {
	case int:
		return fmt.Sprintf("int(%d)", x)
	case []byte:
		return fmt.Sprintf("[]byte(%s)", strconv.Quote(string(x)))
	default:
		log.Fatalf("unsupported corpus value type %T", v)
		return ""
	}
}

func writeSeed(dir, name string, values ...any) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	buf.WriteString("go test fuzz v1\n")
	for _, v := range values {
		buf.WriteString(entry(v))
		buf.WriteByte('\n')
	}
	if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
		log.Fatal(err)
	}
}

func metaBytes(meta []int32) []byte {
	raw := make([]byte, 4*len(meta))
	for i, m := range meta {
		binary.LittleEndian.PutUint32(raw[4*i:], uint32(m))
	}
	return raw
}

func main() {
	// FuzzFFTRoundTrip(n int, data []byte)
	fftDir := filepath.Join("internal", "fft", "testdata", "fuzz", "FuzzFFTRoundTrip")
	writeSeed(fftDir, "seed-pow2", 8, []byte{1, 2, 3, 4})
	writeSeed(fftDir, "seed-bluestein-prime", 7, []byte{0xff, 0x00, 0x7f})
	writeSeed(fftDir, "seed-large-prime", 127, []byte{3, 1, 4, 1, 5, 9, 2, 6})
	writeSeed(fftDir, "seed-composite", 48, []byte{0xaa, 0x55, 0xaa, 0x55})
	writeSeed(fftDir, "seed-length-one", 1, []byte{42})

	// FuzzOctreeMetaCodec(n int, totalSamples int, metaBytes []byte)
	octDir := filepath.Join("internal", "octree", "testdata", "fuzz", "FuzzOctreeMetaCodec")
	near := grid.BoxAt(grid.Point{0, 0, 0}, 8, 8, 8)
	tree, err := octree.Build(grid.Cube(16), func(b grid.Box) int {
		if b.Hi[0]-b.Lo[0] > 8 {
			return 0
		}
		if near.ContainsBox(b) {
			return 1
		}
		return 4
	})
	if err != nil {
		log.Fatal(err)
	}
	writeSeed(octDir, "seed-genuine", 16, tree.SampleCount(), metaBytes(tree.EncodeMeta()))
	writeSeed(octDir, "seed-single-cell", 8, 27, metaBytes([]int32{0, 0, 0, 1, 0}))
	writeSeed(octDir, "seed-negative-total", 4, -5, metaBytes([]int32{0, 0, 0, 1, 0}))
	writeSeed(octDir, "seed-huge-total", 1<<20, 1<<50, metaBytes([]int32{0, 0, 0, 1, 0}))
	corruptMeta := tree.EncodeMeta()
	corruptMeta[3] = 3 // non-power-of-two rate
	writeSeed(octDir, "seed-bad-rate", 16, tree.SampleCount(), metaBytes(corruptMeta))

	// FuzzCompressedIO(data []byte)
	smpDir := filepath.Join("internal", "sample", "testdata", "fuzz", "FuzzCompressedIO")
	utree, err := sample.Uniform{Rate: 2, CellSize: 8}.Tree(grid.Cube(16))
	if err != nil {
		log.Fatal(err)
	}
	c := sample.NewCompressed(utree)
	for i := range c.Samples {
		c.Samples[i] = float64(i)*0.25 - 3
	}
	var v64, v32 bytes.Buffer
	if _, err := c.WriteTo(&v64); err != nil {
		log.Fatal(err)
	}
	if _, err := c.WriteTo32(&v32); err != nil {
		log.Fatal(err)
	}
	writeSeed(smpDir, "seed-v64", v64.Bytes())
	writeSeed(smpDir, "seed-v32", v32.Bytes())
	writeSeed(smpDir, "seed-truncated-header", v64.Bytes()[:20])
	writeSeed(smpDir, "seed-truncated-payload", v64.Bytes()[:v64.Len()-3])
	lying := bytes.Clone(v64.Bytes())
	binary.LittleEndian.PutUint64(lying[16:], 1<<39) // forge a huge sample count
	writeSeed(smpDir, "seed-lying-count", lying)

	// FuzzCheckpointCodec(data []byte)
	ckptDir := filepath.Join("internal", "ckpt", "testdata", "fuzz", "FuzzCheckpointCodec")
	snap := &ckpt.Snapshot{Worker: 2, Iter: 5, Strain: make([][][]float64, 3)}
	for b := range snap.Strain {
		snap.Strain[b] = make([][]float64, grid.NumVoigt)
		for v := range snap.Strain[b] {
			data := make([]float64, 8)
			for i := range data {
				data[i] = float64(b*100+v*10+i) * 0.125
			}
			snap.Strain[b][v] = data
		}
	}
	var ck bytes.Buffer
	if _, err := ckpt.WriteSnapshot(&ck, snap); err != nil {
		log.Fatal(err)
	}
	writeSeed(ckptDir, "seed-genuine", ck.Bytes())
	writeSeed(ckptDir, "seed-truncated-header", ck.Bytes()[:22])
	writeSeed(ckptDir, "seed-truncated-payload", ck.Bytes()[:ck.Len()-5])
	// Header layout: magic(4) version(4) worker(4) iter(4) boxes(4)
	// comps(4) perBox(8) crc(8), then the float64 payload.
	lyingBoxes := bytes.Clone(ck.Bytes())
	binary.LittleEndian.PutUint32(lyingBoxes[16:], 1<<19) // claim far more boxes than the payload holds
	writeSeed(ckptDir, "seed-lying-boxes", lyingBoxes)
	hugePerBox := bytes.Clone(ck.Bytes())
	binary.LittleEndian.PutUint64(hugePerBox[24:], 1<<26) // forge a near-cap per-box count
	writeSeed(ckptDir, "seed-huge-perbox", hugePerBox)
	badCRC := bytes.Clone(ck.Bytes())
	binary.LittleEndian.PutUint64(badCRC[32:], 0xdeadbeefdeadbeef)
	writeSeed(ckptDir, "seed-bad-crc", badCRC)

	fmt.Println("seed corpora written under internal/*/testdata/fuzz/")
}
