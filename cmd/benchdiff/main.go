// Command benchdiff compares two benchjson reports metric-by-metric and
// fails when the new report regresses beyond tolerance — the bench
// regression gate CI runs against the committed baseline.
//
//	benchdiff -base BENCH_PR3.json -new BENCH_PR4.json -tol 0.25
//
// Relative metrics (ns/op, B/op, and any custom ReportMetric unit) fail
// when new > base·(1+tol). allocs/op is held to a hard absolute slack
// instead (-allocs-slack, default 0): timing noise never changes an
// allocation count, so a drift there is a real code change. Benchmarks
// present in only one report are listed; -strict turns a benchmark
// missing from the NEW report into a failure (a deleted benchmark can
// hide a regression).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
)

// Result and Report mirror cmd/benchjson's JSON schema.
type Result struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type Report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
	Failed     []string `json:"failed_packages,omitempty"`
}

func load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// key identifies one benchmark across reports. Pkg+Name; the -P procs
// suffix is part of neither (benchjson already split it off), so the same
// benchmark compares across machines with different core counts.
func key(r Result) string { return r.Pkg + "." + r.Name }

type finding struct {
	bench, metric string
	base, new     float64
	rel           float64 // (new-base)/base, 0 for absolute checks
	hard          bool    // allocs/op absolute check
}

func (f finding) String() string {
	if f.hard {
		return fmt.Sprintf("FAIL %s %s: %g -> %g (hard allocation gate)", f.bench, f.metric, f.base, f.new)
	}
	return fmt.Sprintf("FAIL %s %s: %g -> %g (%+.1f%%)", f.bench, f.metric, f.base, f.new, 100*f.rel)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	var (
		basePath    = flag.String("base", "", "baseline benchjson report (required)")
		newPath     = flag.String("new", "", "candidate benchjson report (required)")
		tol         = flag.Float64("tol", 0.25, "allowed relative increase for timing/size metrics (0.25 = +25%)")
		allocsSlack = flag.Float64("allocs-slack", 0, "allowed absolute increase in allocs/op before hard-failing")
		strict      = flag.Bool("strict", false, "fail when a baseline benchmark is missing from the new report")
	)
	flag.Parse()
	if *basePath == "" || *newPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	base, err := load(*basePath)
	if err != nil {
		log.Fatal(err)
	}
	cand, err := load(*newPath)
	if err != nil {
		log.Fatal(err)
	}
	findings, missing, added := diff(base, cand, *tol, *allocsSlack)

	for _, m := range missing {
		fmt.Printf("missing from %s: %s\n", *newPath, m)
	}
	for _, a := range added {
		fmt.Printf("new benchmark: %s\n", a)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	compared := 0
	for _, b := range base.Benchmarks {
		if _, ok := index(cand)[key(b)]; ok {
			compared++
		}
	}
	fmt.Printf("compared %d benchmarks, %d regressions, %d missing, %d added (tol %+.0f%%, allocs slack %g)\n",
		compared, len(findings), len(missing), len(added), 100**tol, *allocsSlack)
	if len(findings) > 0 || (*strict && len(missing) > 0) {
		os.Exit(1)
	}
}

func index(rep *Report) map[string]Result {
	m := make(map[string]Result, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		m[key(b)] = b
	}
	return m
}

// diff compares every baseline benchmark that also exists in the candidate
// report. Returned findings are sorted by benchmark then metric.
func diff(base, cand *Report, tol, allocsSlack float64) (findings []finding, missing, added []string) {
	cIdx := index(cand)
	bIdx := index(base)
	for _, b := range base.Benchmarks {
		c, ok := cIdx[key(b)]
		if !ok {
			missing = append(missing, key(b))
			continue
		}
		metrics := make([]string, 0, len(b.Metrics))
		for name := range b.Metrics {
			metrics = append(metrics, name)
		}
		sort.Strings(metrics)
		for _, name := range metrics {
			bv := b.Metrics[name]
			cv, ok := c.Metrics[name]
			if !ok {
				continue // metric not captured in the candidate run
			}
			if name == "allocs/op" {
				if cv > bv+allocsSlack {
					findings = append(findings, finding{bench: key(b), metric: name, base: bv, new: cv, hard: true})
				}
				continue
			}
			// Relative gate; tiny baselines (sub-ns, zero B/op) are all
			// noise, skip them rather than fail on 0 → 1.
			if bv <= 0 {
				continue
			}
			if rel := (cv - bv) / bv; rel > tol {
				findings = append(findings, finding{bench: key(b), metric: name, base: bv, new: cv, rel: rel})
			}
		}
	}
	for _, c := range cand.Benchmarks {
		if _, ok := bIdx[key(c)]; !ok {
			added = append(added, key(c))
		}
	}
	sort.Strings(missing)
	sort.Strings(added)
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].bench != findings[j].bench {
			return findings[i].bench < findings[j].bench
		}
		return findings[i].metric < findings[j].metric
	})
	return findings, missing, added
}
