// Command benchdiff compares two benchjson reports metric-by-metric and
// fails when the new report regresses beyond tolerance — the bench
// regression gate CI runs against the committed baseline.
//
//	benchdiff -base BENCH_PR3.json -new BENCH_PR4.json -tol 0.25
//
// Relative metrics (ns/op, B/op, and any custom ReportMetric unit) fail
// when new > base·(1+tol). allocs/op is held to a hard gate instead: new
// may exceed base by at most -allocs-slack (absolute, default 0) plus
// -allocs-rel·base (proportional, default 0.05). The absolute slack is
// the real gate for zero/low-allocation hot paths, where any drift is a
// code change; the proportional term keeps setup-heavy benchmarks
// (thousands of allocs/op from pools and plan caches that amortize with
// iteration count) from tripping on a short -benchtime run. ns/op is
// compared only when both runs executed at least -min-time-iters
// iterations (default 100): a 10-iteration quick pass measures timer and
// setup overhead, not the operation, so its per-op time says nothing. On
// such short runs the allocs/op gate is also limited to zero-baseline
// benchmarks — a short run certifies allocation-freeness exactly (a
// clean timed loop measures 0 at any iteration count) but reports
// amortized setup on top of real per-op counts for everything else. A
// zero (or negative) baseline makes the relative gate meaningless —
// dividing by it yields ±Inf/NaN — so those metrics are held to the
// -zero-tol absolute increase instead (default 0: any growth from a zero
// baseline fails; zero baselines are usually hard-won, e.g. B/op of an
// allocation-free steady state). Benchmarks present in only one report
// are listed; -strict turns a benchmark missing from the NEW report into
// a failure (a deleted benchmark can hide a regression).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
)

// Result and Report mirror cmd/benchjson's JSON schema.
type Result struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type Report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
	Failed     []string `json:"failed_packages,omitempty"`
}

func load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// key identifies one benchmark across reports. Pkg+Name; the -P procs
// suffix is part of neither (benchjson already split it off), so the same
// benchmark compares across machines with different core counts.
func key(r Result) string { return r.Pkg + "." + r.Name }

type finding struct {
	bench, metric string
	base, new     float64
	rel           float64 // (new-base)/base, 0 for absolute checks
	hard          bool    // allocs/op absolute check
	zeroBase      bool    // absolute check against a zero baseline
}

func (f finding) String() string {
	switch {
	case f.hard:
		return fmt.Sprintf("FAIL %s %s: %g -> %g (hard allocation gate)", f.bench, f.metric, f.base, f.new)
	case f.zeroBase:
		return fmt.Sprintf("FAIL %s %s: %g -> %g (zero baseline, absolute gate)", f.bench, f.metric, f.base, f.new)
	}
	return fmt.Sprintf("FAIL %s %s: %g -> %g (%+.1f%%)", f.bench, f.metric, f.base, f.new, 100*f.rel)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	var (
		basePath     = flag.String("base", "", "baseline benchjson report (required)")
		newPath      = flag.String("new", "", "candidate benchjson report (required)")
		tol          = flag.Float64("tol", 0.25, "allowed relative increase for timing/size metrics (0.25 = +25%)")
		allocsSlack  = flag.Float64("allocs-slack", 0, "allowed absolute increase in allocs/op before hard-failing")
		allocsRel    = flag.Float64("allocs-rel", 0.05, "additional allowed allocs/op increase as a fraction of the baseline (absorbs setup amortization on short runs)")
		zeroTol      = flag.Float64("zero-tol", 0, "allowed absolute increase for metrics whose baseline is zero (relative tolerance is undefined there)")
		minTimeIters = flag.Int64("min-time-iters", 100, "skip ns/op comparison when either run executed fewer iterations than this (short runs measure overhead, not the op)")
		strict       = flag.Bool("strict", false, "fail when a baseline benchmark is missing from the new report")
	)
	flag.Parse()
	if *basePath == "" || *newPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	base, err := load(*basePath)
	if err != nil {
		log.Fatal(err)
	}
	cand, err := load(*newPath)
	if err != nil {
		log.Fatal(err)
	}
	findings, missing, added := diff(base, cand, gates{
		tol:          *tol,
		allocsSlack:  *allocsSlack,
		allocsRel:    *allocsRel,
		zeroTol:      *zeroTol,
		minTimeIters: *minTimeIters,
	})

	for _, m := range missing {
		fmt.Printf("missing from %s: %s\n", *newPath, m)
	}
	for _, a := range added {
		fmt.Printf("new benchmark: %s\n", a)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	compared := 0
	for _, b := range base.Benchmarks {
		if _, ok := index(cand)[key(b)]; ok {
			compared++
		}
	}
	fmt.Printf("compared %d benchmarks, %d regressions, %d missing, %d added (tol %+.0f%%, allocs slack %g)\n",
		compared, len(findings), len(missing), len(added), 100**tol, *allocsSlack)
	if len(findings) > 0 || (*strict && len(missing) > 0) {
		os.Exit(1)
	}
}

func index(rep *Report) map[string]Result {
	m := make(map[string]Result, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		m[key(b)] = b
	}
	return m
}

// gates bundles the comparison thresholds (see the package doc and flag
// help for what each one means and defends against).
type gates struct {
	tol          float64 // relative increase allowed on timing/size metrics
	allocsSlack  float64 // absolute allocs/op increase allowed
	allocsRel    float64 // proportional allocs/op increase allowed
	zeroTol      float64 // absolute increase allowed over a zero baseline
	minTimeIters int64   // ns/op compared only when both runs have ≥ this many iterations
}

// diff compares every baseline benchmark that also exists in the candidate
// report. Returned findings are sorted by benchmark then metric.
func diff(base, cand *Report, g gates) (findings []finding, missing, added []string) {
	cIdx := index(cand)
	bIdx := index(base)
	for _, b := range base.Benchmarks {
		c, ok := cIdx[key(b)]
		if !ok {
			missing = append(missing, key(b))
			continue
		}
		metrics := make([]string, 0, len(b.Metrics))
		for name := range b.Metrics {
			metrics = append(metrics, name)
		}
		sort.Strings(metrics)
		for _, name := range metrics {
			bv := b.Metrics[name]
			cv, ok := c.Metrics[name]
			if !ok {
				continue // metric not captured in the candidate run
			}
			short := b.Iterations < g.minTimeIters || c.Iterations < g.minTimeIters
			if name == "allocs/op" {
				// A short run divides one-time setup (pool fills, lazily
				// built plans) across few iterations, inflating per-op
				// counts of allocation-heavy benchmarks — but it still
				// certifies allocation-freeness exactly: a clean timed
				// loop measures 0 at any iteration count. So on short
				// runs, only zero baselines are gated.
				if short && bv > 0 {
					continue
				}
				if cv > bv+g.allocsSlack+g.allocsRel*bv {
					findings = append(findings, finding{bench: key(b), metric: name, base: bv, new: cv, hard: true})
				}
				continue
			}
			// Per-op time from a handful of iterations is dominated by
			// timer granularity and one-time setup; comparing it against a
			// converged baseline reports a phantom regression of several
			// thousand percent on nanosecond-scale benchmarks.
			if name == "ns/op" && short {
				continue
			}
			// A zero baseline breaks the relative gate ((cv-bv)/bv is
			// ±Inf/NaN); silently skipping it — the old behavior — let a
			// hard-won 0 B/op steady state regress unnoticed. Treat it as
			// an absolute difference against -zero-tol instead.
			if bv <= 0 {
				if cv > bv+g.zeroTol {
					findings = append(findings, finding{bench: key(b), metric: name, base: bv, new: cv, zeroBase: true})
				}
				continue
			}
			if rel := (cv - bv) / bv; rel > g.tol {
				findings = append(findings, finding{bench: key(b), metric: name, base: bv, new: cv, rel: rel})
			}
		}
	}
	for _, c := range cand.Benchmarks {
		if _, ok := bIdx[key(c)]; !ok {
			added = append(added, key(c))
		}
	}
	sort.Strings(missing)
	sort.Strings(added)
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].bench != findings[j].bench {
			return findings[i].bench < findings[j].bench
		}
		return findings[i].metric < findings[j].metric
	})
	return findings, missing, added
}
