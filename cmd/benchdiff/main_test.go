package main

import "testing"

func rep(benches ...Result) *Report { return &Report{Benchmarks: benches} }

func bench(pkg, name string, ns, bytes, allocs float64) Result {
	return Result{Name: name, Pkg: pkg, Metrics: map[string]float64{
		"ns/op":     ns,
		"B/op":      bytes,
		"allocs/op": allocs,
	}}
}

func TestDiffWithinTolerancePasses(t *testing.T) {
	base := rep(bench("pkg/a", "BenchmarkX", 100, 64, 3))
	cand := rep(bench("pkg/a", "BenchmarkX", 120, 70, 3))
	findings, missing, added := diff(base, cand, 0.25, 0)
	if len(findings) != 0 || len(missing) != 0 || len(added) != 0 {
		t.Fatalf("expected clean diff, got findings=%v missing=%v added=%v", findings, missing, added)
	}
}

func TestDiffTimingRegressionFails(t *testing.T) {
	base := rep(bench("pkg/a", "BenchmarkX", 100, 64, 3))
	cand := rep(bench("pkg/a", "BenchmarkX", 200, 64, 3))
	findings, _, _ := diff(base, cand, 0.25, 0)
	if len(findings) != 1 {
		t.Fatalf("expected one finding, got %v", findings)
	}
	f := findings[0]
	if f.metric != "ns/op" || f.hard {
		t.Fatalf("expected soft ns/op finding, got %+v", f)
	}
	if f.rel < 0.99 || f.rel > 1.01 {
		t.Fatalf("expected ~+100%% relative growth, got %v", f.rel)
	}
}

func TestDiffAllocsHardGate(t *testing.T) {
	base := rep(bench("pkg/a", "BenchmarkX", 100, 64, 3))

	// Growth within slack passes.
	cand := rep(bench("pkg/a", "BenchmarkX", 100, 64, 5))
	if findings, _, _ := diff(base, cand, 0.25, 2); len(findings) != 0 {
		t.Fatalf("allocs growth within slack should pass, got %v", findings)
	}

	// Growth beyond slack fails regardless of how generous the relative
	// tolerance is — the alloc gate is absolute.
	cand = rep(bench("pkg/a", "BenchmarkX", 100, 64, 6))
	findings, _, _ := diff(base, cand, 100, 2)
	if len(findings) != 1 || !findings[0].hard || findings[0].metric != "allocs/op" {
		t.Fatalf("expected hard allocs/op finding, got %v", findings)
	}
}

func TestDiffMissingAndAdded(t *testing.T) {
	base := rep(
		bench("pkg/a", "BenchmarkOld", 100, 0, 0),
		bench("pkg/a", "BenchmarkKept", 100, 0, 0),
	)
	cand := rep(
		bench("pkg/a", "BenchmarkKept", 100, 0, 0),
		bench("pkg/b", "BenchmarkNew", 50, 0, 0),
	)
	findings, missing, added := diff(base, cand, 0.25, 0)
	if len(findings) != 0 {
		t.Fatalf("unexpected findings %v", findings)
	}
	if len(missing) != 1 || missing[0] != "pkg/a.BenchmarkOld" {
		t.Fatalf("missing = %v", missing)
	}
	if len(added) != 1 || added[0] != "pkg/b.BenchmarkNew" {
		t.Fatalf("added = %v", added)
	}
}

func TestDiffZeroBaselineSkipped(t *testing.T) {
	// A zero baseline (e.g. 0 B/op) cannot support a relative gate; 0 -> 16
	// must not fail the build on noise-level allocator changes.
	base := rep(bench("pkg/a", "BenchmarkX", 100, 0, 0))
	cand := rep(bench("pkg/a", "BenchmarkX", 100, 16, 0))
	if findings, _, _ := diff(base, cand, 0.25, 0); len(findings) != 0 {
		t.Fatalf("zero baseline should be skipped, got %v", findings)
	}
}

func TestDiffImprovementNeverFails(t *testing.T) {
	base := rep(bench("pkg/a", "BenchmarkX", 100, 640, 30))
	cand := rep(bench("pkg/a", "BenchmarkX", 10, 64, 3))
	if findings, _, _ := diff(base, cand, 0.0, 0); len(findings) != 0 {
		t.Fatalf("improvements should pass even at tol=0, got %v", findings)
	}
}
