package main

import "testing"

func rep(benches ...Result) *Report { return &Report{Benchmarks: benches} }

func bench(pkg, name string, ns, bytes, allocs float64) Result {
	return Result{Name: name, Pkg: pkg, Iterations: 1_000_000, Metrics: map[string]float64{
		"ns/op":     ns,
		"B/op":      bytes,
		"allocs/op": allocs,
	}}
}

func TestDiffWithinTolerancePasses(t *testing.T) {
	base := rep(bench("pkg/a", "BenchmarkX", 100, 64, 3))
	cand := rep(bench("pkg/a", "BenchmarkX", 120, 70, 3))
	findings, missing, added := diff(base, cand, gates{tol: 0.25})
	if len(findings) != 0 || len(missing) != 0 || len(added) != 0 {
		t.Fatalf("expected clean diff, got findings=%v missing=%v added=%v", findings, missing, added)
	}
}

func TestDiffTimingRegressionFails(t *testing.T) {
	base := rep(bench("pkg/a", "BenchmarkX", 100, 64, 3))
	cand := rep(bench("pkg/a", "BenchmarkX", 200, 64, 3))
	findings, _, _ := diff(base, cand, gates{tol: 0.25})
	if len(findings) != 1 {
		t.Fatalf("expected one finding, got %v", findings)
	}
	f := findings[0]
	if f.metric != "ns/op" || f.hard {
		t.Fatalf("expected soft ns/op finding, got %+v", f)
	}
	if f.rel < 0.99 || f.rel > 1.01 {
		t.Fatalf("expected ~+100%% relative growth, got %v", f.rel)
	}
}

// TestDiffTimingSkippedOnShortRuns pins the iteration guard: per-op time
// from a -benchtime=10x quick pass is timer granularity plus amortized
// setup, not the operation, so comparing it against a converged baseline
// manufactured phantom +10000% regressions on nanosecond-scale
// benchmarks. Other metrics keep their gates.
func TestDiffTimingSkippedOnShortRuns(t *testing.T) {
	base := rep(bench("pkg/a", "BenchmarkX", 17, 64, 3))
	short := bench("pkg/a", "BenchmarkX", 2251, 64, 3)
	short.Iterations = 10
	cand := rep(short)

	findings, _, _ := diff(base, cand, gates{tol: 0.25, minTimeIters: 100})
	if len(findings) != 0 {
		t.Fatalf("short-run ns/op should be skipped, got %v", findings)
	}

	// The guard is about iteration count, not direction: a short BASE
	// run is just as meaningless.
	findings, _, _ = diff(cand, base, gates{tol: 0.25, minTimeIters: 100})
	if len(findings) != 0 {
		t.Fatalf("short-base ns/op should be skipped, got %v", findings)
	}

	// A converged run with the same growth still fails.
	slow := bench("pkg/a", "BenchmarkX", 2251, 64, 3)
	findings, _, _ = diff(base, rep(slow), gates{tol: 0.25, minTimeIters: 100})
	if len(findings) != 1 || findings[0].metric != "ns/op" {
		t.Fatalf("converged ns/op regression must still fail, got %v", findings)
	}

	// B/op on the short run is still gated — only timing is skipped.
	short.Metrics["B/op"] = 1000
	findings, _, _ = diff(base, rep(short), gates{tol: 0.25, minTimeIters: 100})
	if len(findings) != 1 || findings[0].metric != "B/op" {
		t.Fatalf("expected B/op finding on the short run, got %v", findings)
	}
}

// TestDiffShortRunAllocsGateOnlyZeroBaselines: a short run reports
// amortized setup on top of real per-op allocation counts (base 1 showed
// up as 12 at -benchtime=10x), so allocation-heavy benchmarks are not
// gated there — but a zero-alloc hot path measures exactly 0 at any
// iteration count, so its gate holds even on the quickest pass.
func TestDiffShortRunAllocsGateOnlyZeroBaselines(t *testing.T) {
	heavy := bench("pkg/a", "BenchmarkSetupHeavy", 100, 64, 12)
	heavy.Iterations = 10
	base := rep(bench("pkg/a", "BenchmarkSetupHeavy", 100, 64, 1))
	if findings, _, _ := diff(base, rep(heavy), gates{tol: 100, minTimeIters: 100}); len(findings) != 0 {
		t.Fatalf("nonzero-baseline allocs must be skipped on short runs, got %v", findings)
	}

	hot := bench("pkg/a", "BenchmarkHot", 100, 0, 7)
	hot.Iterations = 10
	base = rep(bench("pkg/a", "BenchmarkHot", 100, 0, 0))
	findings, _, _ := diff(base, rep(hot), gates{tol: 100, minTimeIters: 100})
	if len(findings) != 1 || !findings[0].hard || findings[0].metric != "allocs/op" {
		t.Fatalf("zero-baseline allocs must stay gated on short runs, got %v", findings)
	}
}

func TestDiffAllocsHardGate(t *testing.T) {
	base := rep(bench("pkg/a", "BenchmarkX", 100, 64, 3))

	// Growth within the absolute slack passes.
	cand := rep(bench("pkg/a", "BenchmarkX", 100, 64, 5))
	if findings, _, _ := diff(base, cand, gates{tol: 0.25, allocsSlack: 2}); len(findings) != 0 {
		t.Fatalf("allocs growth within slack should pass, got %v", findings)
	}

	// Growth beyond slack fails regardless of how generous the relative
	// tolerance is — the alloc gate is absolute.
	cand = rep(bench("pkg/a", "BenchmarkX", 100, 64, 6))
	findings, _, _ := diff(base, cand, gates{tol: 100, allocsSlack: 2})
	if len(findings) != 1 || !findings[0].hard || findings[0].metric != "allocs/op" {
		t.Fatalf("expected hard allocs/op finding, got %v", findings)
	}
}

// TestDiffAllocsProportionalSlack pins the proportional term: a
// setup-heavy benchmark at thousands of allocs/op drifts a few percent
// with iteration count (pool fills and plan caches amortize differently
// on a short run), which no flat slack can absorb without also giving a
// zero-alloc hot path that much headroom.
func TestDiffAllocsProportionalSlack(t *testing.T) {
	base := rep(bench("pkg/a", "BenchmarkBig", 100, 64, 4000))
	g := gates{tol: 0.25, allocsSlack: 8, allocsRel: 0.05}

	// 4% drift on a 4000-alloc benchmark: inside 8 + 5%·4000.
	cand := rep(bench("pkg/a", "BenchmarkBig", 100, 64, 4160))
	if findings, _, _ := diff(base, cand, g); len(findings) != 0 {
		t.Fatalf("drift within proportional slack should pass, got %v", findings)
	}

	// 10% growth fails.
	cand = rep(bench("pkg/a", "BenchmarkBig", 100, 64, 4400))
	findings, _, _ := diff(base, cand, g)
	if len(findings) != 1 || !findings[0].hard {
		t.Fatalf("expected hard allocs/op finding, got %v", findings)
	}

	// The proportional term gives a zero-alloc hot path nothing: any
	// increase beyond the absolute slack still fails.
	base = rep(bench("pkg/a", "BenchmarkHot", 100, 0, 0))
	cand = rep(bench("pkg/a", "BenchmarkHot", 100, 0, 9))
	findings, _, _ = diff(base, cand, g)
	if len(findings) != 1 || !findings[0].hard {
		t.Fatalf("zero-alloc path must keep the absolute gate, got %v", findings)
	}
}

func TestDiffMissingAndAdded(t *testing.T) {
	base := rep(
		bench("pkg/a", "BenchmarkOld", 100, 0, 0),
		bench("pkg/a", "BenchmarkKept", 100, 0, 0),
	)
	cand := rep(
		bench("pkg/a", "BenchmarkKept", 100, 0, 0),
		bench("pkg/b", "BenchmarkNew", 50, 0, 0),
	)
	findings, missing, added := diff(base, cand, gates{tol: 0.25})
	if len(findings) != 0 {
		t.Fatalf("unexpected findings %v", findings)
	}
	if len(missing) != 1 || missing[0] != "pkg/a.BenchmarkOld" {
		t.Fatalf("missing = %v", missing)
	}
	if len(added) != 1 || added[0] != "pkg/b.BenchmarkNew" {
		t.Fatalf("added = %v", added)
	}
}

// TestDiffZeroBaselineAbsoluteGate is the regression test for the
// divide-by-baseline bug: a zero baseline used to be skipped entirely, so
// a benchmark that had earned 0 B/op could regress to any size unnoticed.
// Zero baselines are now held to the -zero-tol absolute increase.
func TestDiffZeroBaselineAbsoluteGate(t *testing.T) {
	cases := []struct {
		name         string
		baseB, candB float64
		zeroTol      float64
		wantFindings int
	}{
		{name: "growth from zero fails at zero-tol 0", baseB: 0, candB: 16, zeroTol: 0, wantFindings: 1},
		{name: "growth within zero-tol passes", baseB: 0, candB: 16, zeroTol: 64, wantFindings: 0},
		{name: "growth beyond zero-tol fails", baseB: 0, candB: 128, zeroTol: 64, wantFindings: 1},
		{name: "zero stays zero passes", baseB: 0, candB: 0, zeroTol: 0, wantFindings: 0},
		{name: "negative baseline uses absolute gate too", baseB: -1, candB: 10, zeroTol: 4, wantFindings: 1},
		{name: "nonzero baseline keeps the relative gate", baseB: 64, candB: 70, zeroTol: 0, wantFindings: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := rep(bench("pkg/a", "BenchmarkX", 100, tc.baseB, 0))
			cand := rep(bench("pkg/a", "BenchmarkX", 100, tc.candB, 0))
			findings, _, _ := diff(base, cand, gates{tol: 0.25, zeroTol: tc.zeroTol})
			if len(findings) != tc.wantFindings {
				t.Fatalf("findings = %v, want %d", findings, tc.wantFindings)
			}
			if tc.wantFindings == 1 {
				f := findings[0]
				if f.metric != "B/op" || !f.zeroBase || f.hard {
					t.Fatalf("finding = %+v, want zero-baseline B/op gate", f)
				}
			}
		})
	}
}

func TestDiffImprovementNeverFails(t *testing.T) {
	base := rep(bench("pkg/a", "BenchmarkX", 100, 640, 30))
	cand := rep(bench("pkg/a", "BenchmarkX", 10, 64, 3))
	if findings, _, _ := diff(base, cand, gates{}); len(findings) != 0 {
		t.Fatalf("improvements should pass even at tol=0, got %v", findings)
	}
}
