package main

import (
	"fmt"
	"os"
	"time"

	"lowcomm3d/internal/fleet"
	"lowcomm3d/internal/report"
)

// fleetChaosStudy drives the fleet scheduler's seeded device-fault
// simulation across fault mixes and fleet widths: crashes, hangs,
// transient compute errors, and slowdowns injected at dispatch,
// mid-batch, and completion, with the health monitor marking stragglers
// suspect → dead and exactly-once recovery re-placing their work. Every
// row re-checks the tentpole invariants — all placed jobs settle
// (completed or typed failure, never wedged) and the ledger audit is
// exact — then shows what the fault mix cost: deaths, requeues, hedges,
// retries, and readmissions.
func fleetChaosStudy() error {
	t := report.New("Fleet fault tolerance — seeded device-fault matrix (sim clock, exactly-once audit checked per row)",
		"scenario", "devices", "placed", "ok", "failed", "deaths",
		"requeued", "hedged", "retries", "readmitted", "sim time")
	for _, sc := range []struct {
		name    string
		devices int
		faults  fleet.FaultSchedule
	}{
		{"crash-only", 2, fleet.FaultSchedule{Seed: 11, CrashProb: 0.08}},
		{"hang-only", 2, fleet.FaultSchedule{Seed: 12, HangProb: 0.08}},
		{"transient-heavy", 4, fleet.FaultSchedule{Seed: 13, TransientProb: 0.20}},
		{"slow-fleet", 4, fleet.FaultSchedule{Seed: 14, SlowProb: 0.30}},
		{"full mix", 4, fleet.FaultSchedule{
			Seed: 15, CrashProb: 0.04, HangProb: 0.04,
			TransientProb: 0.08, SlowProb: 0.10, ProbeFailProb: 0.30,
		}},
		{"full mix, wide", 8, fleet.FaultSchedule{
			Seed: 16, CrashProb: 0.04, HangProb: 0.04,
			TransientProb: 0.08, SlowProb: 0.10, ProbeFailProb: 0.30,
		}},
	} {
		faults := sc.faults
		rep, err := fleet.RunSim(fleet.SimConfig{
			Seed: 21, Devices: sc.devices, Jobs: 120,
			Faults: &faults,
			Health: fleet.HealthOptions{
				MinDeadline: 10 * time.Millisecond,
				ProbeEvery:  20 * time.Millisecond,
			},
			Check: func(s *fleet.Scheduler) error {
				reserved, released, doubles := s.Audit()
				if doubles != 0 {
					return fmt.Errorf("paperbench: double release under %q", sc.name)
				}
				if released > reserved {
					return fmt.Errorf("paperbench: released %d > reserved %d under %q", released, reserved, sc.name)
				}
				return nil
			},
		})
		if err != nil {
			return err
		}
		if rep.Unsettled != 0 {
			return fmt.Errorf("paperbench: %d jobs never settled under %q", rep.Unsettled, sc.name)
		}
		if rep.Reserved != rep.Released || rep.DoubleReleases != 0 {
			return fmt.Errorf("paperbench: audit reserved=%d released=%d doubles=%d under %q",
				rep.Reserved, rep.Released, rep.DoubleReleases, sc.name)
		}
		// "ok" is settled-successfully: every placed job either completed
		// byte-identically or failed typed (Unsettled == 0 enforced above).
		t.AddCells(sc.name, fmt.Sprint(sc.devices), fmt.Sprint(rep.Placed),
			fmt.Sprint(rep.Placed-rep.Failed), fmt.Sprint(rep.Failed), fmt.Sprint(rep.Deaths),
			fmt.Sprint(rep.Requeued), fmt.Sprint(rep.Hedged), fmt.Sprint(rep.Transients),
			fmt.Sprint(rep.Readmitted), report.Seconds(rep.Elapsed.Seconds()))
	}
	t.Render(os.Stdout)
	return nil
}
