package main

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lowcomm3d/internal/gpu"
	"lowcomm3d/internal/green"
	"lowcomm3d/internal/grid"
	"lowcomm3d/internal/report"
	"lowcomm3d/internal/serve"
	"lowcomm3d/internal/telemetry"
)

// wfqLoadStudy is the weighted-fair queueing overload study, and it is
// self-checking: it fails (non-zero exit via main's run helper) unless
// the measured per-tenant drain shares match the configured weight ratio
// within wfqTolerance. Three tenants at weights 1:2:4 flood a one-worker
// engine so every tenant queue stays non-empty for the whole measured
// window — the regime where dispatch order alone decides who drains —
// and the shares are not read from engine internals but scraped live
// over HTTP from the study's own /metrics endpoint, exactly as an
// operator's Prometheus would see them. Scraping twice (a baseline once
// every tenant is past plan warm-up, then again after wfqWindowJobs
// further completions) keeps cold plan builds and ramp-up out of the
// window; with 50+ full deficit-round-robin rounds in the window, the
// ±1-round boundary error is well inside the tolerance.
func wfqLoadStudy() error {
	const (
		n        = 64
		k        = 16 // job sized so service time dwarfs submitter wake-up latency
		flooders = 12 // submitting goroutines per tenant: queues never run dry
		warmPer  = 8  // completions per tenant before the window opens
		// 50 full rounds of the 1+2+4 weight cycle; the ±1-round boundary
		// error at the two scrape instants is then well inside tolerance.
		wfqWindowJobs = 350
		wfqTolerance  = 0.10
		deadline      = 60 * time.Second
	)
	weights := map[string]int{"bronze": 1, "silver": 2, "gold": 4}

	eng, err := serve.New(serve.Options{
		Dim: grid.Cube(n), Kernel: green.Gaussian{Sigma: 2}, FarRate: 8, Pruned: true,
		Workers: 1, QueueDepth: 64, Device: gpu.V100_16GB(),
		TenantWeights: weights,
	})
	if err != nil {
		return err
	}
	defer eng.Drain()

	srv, err := telemetry.ServeWith("127.0.0.1:0", telemetry.ServeConfig{
		Trace: eng.Trace(),
		Tenants: func() []telemetry.TenantSnapshot {
			snaps := eng.TenantSnapshots()
			out := make([]telemetry.TenantSnapshot, len(snaps))
			for i, s := range snaps {
				out[i] = telemetry.TenantSnapshot(s)
			}
			return out
		},
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	box := grid.CubeAt(grid.Point{0, 0, 0}, k)
	input := grid.NewField(grid.Cube(k))
	for i := range input.Data {
		input.Data[i] = float64(i%7) - 3
	}

	var (
		stop     atomic.Bool
		wg       sync.WaitGroup
		mu       sync.Mutex
		floodErr error
	)
	for tenant := range weights {
		for g := 0; g < flooders; g++ {
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				for !stop.Load() {
					res, err := eng.Submit(context.Background(), tenant, box, input)
					if err != nil {
						mu.Lock()
						if floodErr == nil {
							floodErr = fmt.Errorf("tenant %s submit: %w", tenant, err)
						}
						mu.Unlock()
						return
					}
					res.Release()
				}
			}(tenant)
		}
	}

	// scrape reads lowcomm_serve_tenant_jobs_completed_total per tenant
	// from the live /metrics endpoint — the same series the acceptance
	// dashboards would watch.
	const series = `lowcomm_serve_tenant_jobs_completed_total{tenant="`
	scrape := func() (map[string]float64, error) {
		resp, err := http.Get(srv.ServeURL())
		if err != nil {
			return nil, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		counts := make(map[string]float64)
		for _, line := range strings.Split(string(body), "\n") {
			rest, ok := strings.CutPrefix(line, series)
			if !ok {
				continue
			}
			q := strings.Index(rest, `"`)
			if q < 0 || q+2 > len(rest) {
				continue
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(rest[q+2:]), 64)
			if err != nil {
				return nil, fmt.Errorf("parsing %q: %w", line, err)
			}
			counts[rest[:q]] = v
		}
		return counts, nil
	}

	fail := func(err error) error {
		stop.Store(true)
		wg.Wait()
		mu.Lock()
		defer mu.Unlock()
		if floodErr != nil {
			return floodErr
		}
		return err
	}

	// Baseline: wait until every tenant has cleared warm-up, then pin the
	// window's starting counts from a live scrape.
	start := time.Now()
	var base map[string]float64
	for {
		if time.Since(start) > deadline {
			return fail(fmt.Errorf("wfq-load: warm-up incomplete after %v (counts %v)", deadline, base))
		}
		c, err := scrape()
		if err != nil {
			return fail(err)
		}
		warm := len(c) == len(weights)
		for t := range weights {
			if c[t] < warmPer {
				warm = false
			}
		}
		if warm {
			base = c
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Window: scrape until wfqWindowJobs further completions have landed.
	var final map[string]float64
	for {
		if time.Since(start) > deadline {
			return fail(fmt.Errorf("wfq-load: window incomplete after %v", deadline))
		}
		c, err := scrape()
		if err != nil {
			return fail(err)
		}
		var total float64
		for t := range weights {
			total += c[t] - base[t]
		}
		if total >= wfqWindowJobs {
			final = c
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	mu.Lock()
	if floodErr != nil {
		mu.Unlock()
		return floodErr
	}
	mu.Unlock()

	var weightSum, total float64
	for _, w := range weights {
		weightSum += float64(w)
	}
	for t := range weights {
		total += final[t] - base[t]
	}
	tenants := make([]string, 0, len(weights))
	for t := range weights {
		tenants = append(tenants, t)
	}
	sort.Slice(tenants, func(a, b int) bool { return weights[tenants[a]] < weights[tenants[b]] })

	tbl := report.New(fmt.Sprintf("weighted-fair serving under overload — 1 worker, %d flooders/tenant, %d-job window, shares scraped live from /metrics",
		flooders, int(total)),
		"tenant", "weight", "drained", "share", "want", "error")
	var checkErr error
	for _, t := range tenants {
		got := (final[t] - base[t]) / total
		want := float64(weights[t]) / weightSum
		rel := math.Abs(got-want) / want
		tbl.AddCells(t, fmt.Sprint(weights[t]), fmt.Sprint(int(final[t]-base[t])),
			fmt.Sprintf("%.3f", got), fmt.Sprintf("%.3f", want), fmt.Sprintf("%.1f%%", 100*rel))
		if rel > wfqTolerance && checkErr == nil {
			checkErr = fmt.Errorf("wfq-load: tenant %s drain share %.3f deviates %.1f%% from weighted share %.3f (tolerance %.0f%%)",
				t, got, 100*rel, want, 100*wfqTolerance)
		}
	}
	tbl.Render(os.Stdout)
	if checkErr != nil {
		return checkErr
	}
	fmt.Printf("\nall %d tenants within %.0f%% of their weighted drain share over %d completions\n",
		len(tenants), 100*wfqTolerance, int(total))
	return nil
}
