package main

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"lowcomm3d/internal/gpu"
	"lowcomm3d/internal/green"
	"lowcomm3d/internal/grid"
	"lowcomm3d/internal/report"
	"lowcomm3d/internal/serve"
)

// serveLoadStudy drives the steady-state serving engine (§3.1's
// plan-once-batch-many claim) with a seeded open-loop arrival process:
// Poisson arrivals at a chosen multiple of the engine's calibrated
// capacity, three tenants, four distinct sub-domain boxes sharing one
// plan set. Open-loop means arrivals ignore completions — exactly the
// regime where admission control matters: below capacity everything is
// served, above it the bounded queue sheds load with typed, retryable
// rejections instead of collapsing. One engine worker keeps the study
// meaningful on any core count (capacity is then 1/service-time even on
// a single-CPU runner); the job is sized so service time dwarfs
// scheduler pacing jitter.
func serveLoadStudy() error {
	const (
		n    = 64
		k    = 16
		jobs = 32
		seed = 42
	)
	dim := grid.Cube(n)
	kernel := green.Gaussian{Sigma: 2}
	boxes := []grid.Box{
		grid.CubeAt(grid.Point{0, 0, 0}, k),
		grid.CubeAt(grid.Point{16, 16, 16}, k),
		grid.CubeAt(grid.Point{32, 32, 32}, k),
		grid.CubeAt(grid.Point{48, 48, 48}, k),
	}
	tenants := []string{"astro", "fluids", "imaging"}
	rng := rand.New(rand.NewSource(seed))
	inputs := make([]*grid.Field, len(boxes))
	for i := range inputs {
		f := grid.NewField(grid.Cube(k))
		for j := range f.Data {
			f.Data[j] = rng.NormFloat64()
		}
		inputs[i] = f
	}
	newEngine := func(dev *gpu.Device, depth int) (*serve.Engine, error) {
		return serve.New(serve.Options{
			Dim: dim, Kernel: kernel, FarRate: 8, Pruned: true,
			Workers: 1, QueueDepth: depth, Device: dev,
		})
	}
	// warm submits every (tenant, box) pair through an engine so its plan
	// set and pipelines exist before anything is measured.
	warm := func(eng *serve.Engine) error {
		for i := 0; i < 2*len(boxes); i++ {
			res, err := eng.Submit(context.Background(), tenants[i%len(tenants)], boxes[i%len(boxes)], inputs[i%len(boxes)])
			if err != nil {
				return err
			}
			res.Release()
		}
		return nil
	}

	// Calibrate: warm sequential submits, service time read from the
	// engine's own serve.job_seconds histogram (pure execution — queue
	// wait and cross-goroutine wake-up latency excluded, which a
	// wall-clock probe would fold in and overstate). The fresh device's
	// high-water mark after a one-at-a-time run is the per-job modeled
	// footprint.
	calDev := gpu.V100_16GB()
	cal, err := newEngine(calDev, 4)
	if err != nil {
		return err
	}
	if err := warm(cal); err != nil {
		return err
	}
	calHist := cal.Trace().Histogram("serve.job_seconds")
	calC0, calS0 := calHist.Count(), calHist.Sum() // exclude warm-up (cold plan builds)
	const calJobs = 16
	for i := 0; i < calJobs; i++ {
		res, err := cal.Submit(context.Background(), tenants[i%len(tenants)], boxes[i%len(boxes)], inputs[i%len(boxes)])
		if err != nil {
			return err
		}
		res.Release()
	}
	var svc time.Duration
	if cn := calHist.Count() - calC0; cn > 0 {
		svc = (calHist.Sum() - calS0) / time.Duration(cn)
	}
	if svc <= 0 {
		svc = time.Millisecond
	}
	fp := calDev.Peak()
	cal.Drain()
	planHits := cal.Trace().CounterValue("serve.plan_cache_hits")
	planMisses := cal.Trace().CounterValue("serve.plan_cache_misses")

	levels := []struct {
		name  string
		load  float64 // offered rate as a multiple of calibrated capacity
		dev   *gpu.Device
		depth int
	}{
		{"0.5x", 0.5, gpu.V100_16GB(), 6},
		{"1x", 1, gpu.V100_16GB(), 6},
		{"2x", 2, gpu.V100_16GB(), 6},
		{"8x", 8, gpu.V100_16GB(), 6},
		// Ledger sized for 2.5 concurrent jobs: admission hits the memory
		// gate before the queue bound, exercising the other reject path.
		{"2x, 2.5-job device", 2, &gpu.Device{Name: "constrained", Capacity: 2*fp + fp/2}, 6},
	}
	t := report.New(fmt.Sprintf("§3.1 serving — seeded open-loop Poisson load, N=%d k=%d, 1 worker, %d jobs/level, %d tenants, queue depth 6",
		n, k, jobs, len(tenants)),
		"offered load", "done", "rej queue", "rej mem", "p50", "p95", "retry hint")
	for li, lv := range levels {
		eng, err := newEngine(lv.dev, lv.depth)
		if err != nil {
			return err
		}
		// Warm this engine's private caches so the measured window sees
		// steady-state serving, not one-off plan construction.
		if err := warm(eng); err != nil {
			return err
		}
		lv.dev.ResetPeak()
		interMean := float64(svc) / lv.load // mean ns between arrivals
		arr := rand.New(rand.NewSource(seed + int64(li) + 1))
		var (
			wg               sync.WaitGroup
			mu               sync.Mutex
			lats             []time.Duration
			rejQueue, rejMem int
			retrySum         time.Duration
		)
		next := time.Now()
		for i := 0; i < jobs; i++ {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				t0 := time.Now()
				res, err := eng.Submit(context.Background(), tenants[i%len(tenants)], boxes[i%len(boxes)], inputs[i%len(boxes)])
				if err != nil {
					var ov *serve.OverloadError
					mu.Lock()
					defer mu.Unlock()
					if errors.As(err, &ov) {
						if errors.Is(err, gpu.ErrOutOfMemory) {
							rejMem++
						} else {
							rejQueue++
						}
						retrySum += ov.RetryAfter
					}
					return
				}
				lat := time.Since(t0)
				res.Release()
				mu.Lock()
				lats = append(lats, lat)
				mu.Unlock()
			}()
			next = next.Add(time.Duration(arr.ExpFloat64() * interMean))
		}
		wg.Wait()
		eng.Drain()
		planHits += eng.Trace().CounterValue("serve.plan_cache_hits")
		planMisses += eng.Trace().CounterValue("serve.plan_cache_misses")

		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		q := func(p float64) string {
			if len(lats) == 0 {
				return "—"
			}
			i := int(p * float64(len(lats)-1))
			return report.Seconds(lats[i].Seconds())
		}
		hint := "—"
		if rej := rejQueue + rejMem; rej > 0 {
			hint = report.Seconds((retrySum / time.Duration(rej)).Seconds())
		}
		t.AddCells(lv.name, fmt.Sprint(len(lats)), fmt.Sprint(rejQueue), fmt.Sprint(rejMem),
			q(0.50), q(0.95), hint)
	}
	t.Render(os.Stdout)
	fmt.Printf("\ncalibrated: %s per warm job, modeled footprint %s; plan cache %d hits / %d misses across %d engines (one %d-box plan set each)\n",
		report.Seconds(svc.Seconds()), report.Bytes(fp), planHits, planMisses, len(levels)+1, len(boxes))
	return nil
}
