package main

import (
	"fmt"
	"os"

	"lowcomm3d/internal/fleet"
	"lowcomm3d/internal/gpu"
	"lowcomm3d/internal/report"
)

// fleetLoadStudy drives the fleet scheduler's deterministic simulation
// harness across fleet shapes: the same seeded job stream placed onto
// fleets that differ in width, node-box layout, and batching/stealing
// limits. The invariants the property tests pin (no overcommit, balanced
// ledger) hold here too; the table shows how shape moves admission,
// stealing, and the realized same-k batching factor (§5.1).
func fleetLoadStudy() error {
	t := report.New("Fleet scheduler — seeded simulated load across fleet shapes (sim clock)",
		"shape", "devices", "boxes", "jobs", "placed", "rejected", "no-fit",
		"steals", "batch factor", "sim time")
	for _, sc := range []struct {
		name               string
		devices, boxes     int
		jobs               int
		maxBatch, stealMin int
	}{
		{"narrow, one box", 2, 1, 96, 4, 1},
		{"one box", 4, 1, 128, 4, 1},
		{"two boxes", 4, 2, 128, 4, 1},
		{"wide, two boxes", 8, 2, 256, 4, 1},
		{"wide, batch-heavy", 8, 2, 256, 8, 2},
	} {
		rep, err := fleet.RunSim(fleet.SimConfig{
			Seed:    7,
			Devices: sc.devices, Boxes: sc.boxes, Jobs: sc.jobs,
			MaxBatch: sc.maxBatch, StealMin: sc.stealMin,
		})
		if err != nil {
			return err
		}
		factor := "—"
		if rep.BatchRuns > 0 {
			factor = fmt.Sprintf("%.2f", float64(rep.BatchJobs)/float64(rep.BatchRuns))
		}
		t.AddCells(sc.name, fmt.Sprint(sc.devices), fmt.Sprint(sc.boxes), fmt.Sprint(sc.jobs),
			fmt.Sprint(rep.Placed), fmt.Sprint(rep.Rejected), fmt.Sprint(rep.NoFit),
			fmt.Sprint(rep.Steals), factor, report.Seconds(rep.Elapsed.Seconds()))
	}
	t.Render(os.Stdout)

	// Placement pricing: what the α-β cost model (Eq. 2 links: NVLink
	// intra-box, IB cross-box) charges for one k-job landing on an idle
	// 32 GB fleet, home box 0 — the per-decision view under the table
	// above.
	devs := []*gpu.Device{gpu.V100_32GB(), gpu.V100_32GB(), gpu.V100_32GB(), gpu.V100_32GB()}
	s, err := fleet.NewScheduler(fleet.Options{
		Devices: devs, BoxOf: []int{0, 0, 1, 1}, N: 1024, FarRate: 16,
	})
	if err != nil {
		return err
	}
	defer s.Close()
	t2 := report.New("Placement cost — cheapest admissible device for one job, idle 4×V100-32GB fleet (2 boxes)",
		"k", "footprint", "modeled cost")
	for _, k := range []int{16, 32, 64, 128} {
		fp := s.Footprint(k)
		di, cost, fits := s.BestCost(k, fp, 0)
		if !fits {
			return fmt.Errorf("paperbench: k=%d does not fit an idle 32GB fleet", k)
		}
		t2.AddCells(fmt.Sprint(k), report.Bytes(fp),
			fmt.Sprintf("%s (dev %d)", report.Seconds(cost), di))
	}
	fmt.Println()
	t2.Render(os.Stdout)
	return nil
}
