package main

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync/atomic"
	"time"

	"lowcomm3d/internal/cluster"
	"lowcomm3d/internal/green"
	"lowcomm3d/internal/grid"
	"lowcomm3d/internal/report"
	"lowcomm3d/internal/sample"
	"lowcomm3d/internal/serve"
	"lowcomm3d/internal/wire"
)

// wireLoadStudy drives the wire-protocol front door over real loopback
// TCP under seeded fault schedules on both sides of every connection:
// drops (half-open peers), bit-flip corruption, and injected latency,
// exactly the cluster.ChaosConn machinery the wire chaos matrix uses in
// tests, but against a full engine and multi-job clients. The contract
// under test is the protocol's headline claim: every job either completes
// byte-identical to its fault-free baseline or fails with a typed error —
// faults may cost reconnects, resumes, and retries, never corrupt
// results. The study fails if any result mismatches its baseline or any
// untyped error escapes.
func wireLoadStudy() error {
	const (
		n       = 32
		k       = 8
		jobs    = 6 // per fault schedule
		seed    = 42
		faultMs = 1
	)
	dim := grid.Cube(n)
	kernel := green.Gaussian{Sigma: 2}
	boxes := []grid.Box{
		grid.CubeAt(grid.Point{0, 0, 0}, k),
		grid.CubeAt(grid.Point{8, 8, 8}, k),
		grid.CubeAt(grid.Point{16, 16, 16}, k),
	}
	rng := rand.New(rand.NewSource(seed))
	inputs := make([]*grid.Field, len(boxes))
	for i := range inputs {
		f := grid.NewField(grid.Cube(k))
		for j := range f.Data {
			f.Data[j] = rng.NormFloat64()
		}
		inputs[i] = f
	}

	eng, err := serve.New(serve.Options{
		Dim: dim, Kernel: kernel, FarRate: 8, Pruned: true,
		Workers: 2, Trace: tr,
	})
	if err != nil {
		return err
	}
	defer eng.Drain()

	// Fault-free baselines, straight through the engine.
	want := make([][]float64, len(boxes))
	for i := range boxes {
		res, err := eng.Submit(context.Background(), "baseline", boxes[i], inputs[i])
		if err != nil {
			return err
		}
		want[i] = append([]float64(nil), res.Output.Samples...)
		res.Release()
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}

	// Every accepted connection is faulty, with a per-connection derived
	// seed so the schedule is deterministic but reconnects are not doomed
	// to replay their predecessor's faults.
	plans := []struct {
		name               string
		drop, corrupt, dly float64
	}{
		{"clean", 0, 0, 0},
		{"lossy", 0.01, 0.02, 0.10},
		{"hostile", 0.02, 0.05, 0.10},
	}
	var accepts atomic.Int64
	var srvPlan atomic.Pointer[cluster.FaultPlan]
	srvPlan.Store(&cluster.FaultPlan{})
	srv := wire.NewServer(eng, ln, wire.ServerOptions{
		KeepAlive:   25 * time.Millisecond,
		IdleTimeout: 150 * time.Millisecond,
		SessionTTL:  5 * time.Second,
		ChunkBytes:  1024,
		Trace:       tr,
		Flight:      flight,
		ConnWrap: func(c net.Conn) net.Conn {
			p := *srvPlan.Load()
			if p.DropProb == 0 && p.CorruptProb == 0 && p.DelayProb == 0 {
				return c
			}
			p.Seed = p.Seed*1000 + accepts.Add(1)
			return cluster.NewChaosConn(c, p)
		},
	})
	defer srv.Drain()

	t := report.New("Wire front door under seeded faults — complete identical or fail typed",
		"schedule", "jobs", "ok", "typed err", "reconn", "resumes", "retries", "restarts")
	mismatches := 0
	for pi, p := range plans {
		plan := cluster.FaultPlan{
			Seed: int64(seed + pi), DropProb: p.drop, CorruptProb: p.corrupt,
			DelayProb: p.dly, Delay: faultMs * time.Millisecond,
		}
		srvPlan.Store(&plan)
		dials := int64(0)
		c := wire.NewClient(wire.ClientOptions{
			Dial: func() (net.Conn, error) {
				conn, err := net.Dial("tcp", srv.Addr().String())
				if err != nil {
					return nil, err
				}
				if p.drop == 0 && p.corrupt == 0 && p.dly == 0 {
					return conn, nil
				}
				q := plan
				dials++
				q.Seed = plan.Seed*1000 + 500 + dials
				return cluster.NewChaosConn(conn, q), nil
			},
			KeepAlive:       25 * time.Millisecond,
			IdleTimeout:     150 * time.Millisecond,
			ProgressTimeout: 400 * time.Millisecond,
			ReconnectBase:   5 * time.Millisecond,
			MaxReconnects:   64,
			MaxRetries:      8,
		})

		ok, typed := 0, 0
		for j := 0; j < jobs; j++ {
			bi := j % len(boxes)
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			res, err := c.Submit(ctx, "wire", boxes[bi], inputs[bi])
			cancel()
			switch {
			case err == nil:
				if !sampleEqual(res, want[bi]) {
					mismatches++
				} else {
					ok++
				}
			case typedWireErr(err):
				typed++
			default:
				c.Close()
				return fmt.Errorf("schedule %q job %d: untyped error escaped the wire layer: %w", p.name, j, err)
			}
		}
		ctr := func(name string) int64 { return c.Trace().CounterValue(name) }
		t.Add(p.name, jobs, ok, typed,
			ctr("wire.client.reconnects"), ctr("wire.client.resumes"),
			ctr("wire.client.retries"), ctr("wire.client.restarts"))
		c.Close()
	}
	t.Render(os.Stdout)
	fmt.Printf("server: %d sessions (%d resumed, %d expired), %d jobs completed, %d chunks (%d B), %d corrupt frames detected\n",
		srv.Trace().CounterValue("wire.sessions_opened"),
		srv.Trace().CounterValue("wire.sessions_resumed"),
		srv.Trace().CounterValue("wire.sessions_expired"),
		srv.Trace().CounterValue("wire.jobs_completed"),
		srv.Trace().CounterValue("wire.chunks_sent"),
		srv.Trace().CounterValue("wire.chunk_bytes_sent"),
		srv.Trace().CounterValue("wire.frames_corrupt"))
	if mismatches > 0 {
		return fmt.Errorf("%d results differed from their fault-free baseline", mismatches)
	}
	return nil
}

func sampleEqual(got *sample.Compressed, want []float64) bool {
	if got == nil || len(got.Samples) != len(want) {
		return false
	}
	for i := range want {
		if got.Samples[i] != want[i] {
			return false
		}
	}
	return true
}

// typedWireErr mirrors the wire package's declared failure shapes.
func typedWireErr(err error) bool {
	var se *wire.StatusError
	return errors.As(err, &se) ||
		errors.Is(err, wire.ErrUnavailable) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}
