// Command paperbench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index):
//
//	paperbench -table 1      Table 1: memory, traditional vs local FFT
//	paperbench -table 2      Table 2: allowable k per GPU
//	paperbench -table 3      Table 3: GPU-vs-FFTW speedup model
//	paperbench -table 4      Table 4: estimated vs actual GPU memory
//	paperbench -fig 1        Fig. 1: all-to-all rounds/bytes, measured + Eq. 1/6 model
//	paperbench -fig 3        Fig. 3: octree sampling pattern statistics
//	paperbench -sec54        §5.4: batch-parameter study
//	paperbench -measure      §5.3: measured approximation error & compression (pure Go)
//	paperbench -massif       measured MASSIF per-iteration communication, Alg. 1 vs Alg. 2
//	paperbench -faults       fault-injection study: lossy-fabric convolution + crashed MASSIF solve
//	paperbench -chaos        self-healing study: crash/straggler/OOM schedules against the healing solve
//	paperbench -serve-load   §3.1 serving: seeded open-loop load against the steady-state engine
//	paperbench -wfq-load     weighted-fair tenant drain under overload, self-checked against /metrics
//	paperbench -wire-load    wire front door over loopback TCP under seeded connection faults
//	paperbench -fleet-load   fleet scheduler under seeded simulated load across fleet shapes
//	paperbench -job-trace f  per-job lifecycle tracing study: tenant SLO breakdown + Chrome trace to f
//	paperbench -all          everything above
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"lowcomm3d/internal/ckpt"
	"lowcomm3d/internal/cluster"
	"lowcomm3d/internal/conv"
	"lowcomm3d/internal/gpu"
	"lowcomm3d/internal/green"
	"lowcomm3d/internal/grid"
	"lowcomm3d/internal/massif"
	"lowcomm3d/internal/obs"
	"lowcomm3d/internal/report"
	"lowcomm3d/internal/sample"
	"lowcomm3d/internal/supervise"
	"lowcomm3d/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperbench: ")
	var (
		table   = flag.Int("table", 0, "regenerate paper table 1-4")
		fig     = flag.Int("fig", 0, "regenerate paper figure 1 or 3")
		sec54   = flag.Bool("sec54", false, "regenerate the §5.4 batch study")
		measure = flag.Bool("measure", false, "measured error/compression at pure-Go scales")
		massifC = flag.Bool("massif", false, "measured MASSIF per-iteration communication, Alg. 1 vs Alg. 2")
		faults  = flag.Bool("faults", false, "fault-injection study: lossy-fabric convolution + crashed MASSIF solve")
		chaos   = flag.Bool("chaos", false, "self-healing study: crash/straggler/OOM schedules against the healing solve")
		fleet   = flag.Bool("fleet", false, "DGX-2 batch-throughput model (§5.1 batching claim)")
		sweep   = flag.Bool("sweep", false, "measured accuracy/compression tradeoff across far rates (§5.4)")
		sLoad   = flag.Bool("serve-load", false, "seeded open-loop load against the steady-state serving engine (§3.1)")
		wfqLoad = flag.Bool("wfq-load", false, "weighted-fair tenant drain under overload, self-checked against live /metrics shares")
		wLoad   = flag.Bool("wire-load", false, "wire-protocol front door over loopback TCP under seeded connection faults")
		fLoad   = flag.Bool("fleet-load", false, "fleet scheduler under seeded simulated load across fleet shapes")
		fChaos  = flag.Bool("fleet-chaos", false, "fleet fault tolerance under seeded device faults: crash/hang/transient/slowdown with exactly-once recovery")
		all     = flag.Bool("all", false, "run everything")
		traceTo = flag.String("trace", "", "write a Chrome trace (chrome://tracing / Perfetto JSON) of the run to this file")
		serve   = flag.String("serve", "", "serve live telemetry (/metrics, /healthz, /flight, /debug/pprof) on this address, e.g. :8080, and block after the run")
	)
	flag.StringVar(&ckptDir, "ckpt-dir", "",
		"durable checkpoint directory for the -chaos study (default: a fresh directory under the OS temp dir)")
	flag.StringVar(&jobTracePath, "job-trace", "",
		"run the per-job tracing study and write its Chrome-trace artifact (chrome://tracing / Perfetto JSON) to this file")
	flag.Parse()
	if *traceTo != "" || *serve != "" {
		tr = obs.New()
	}
	// The chaos study always records a per-rank flight recorder and dumps
	// its postmortem next to the trace artifact; serve mode exposes the
	// recorder live at /flight.
	if *chaos || *wLoad || *all || *serve != "" {
		flight = telemetry.NewRecorder(8, 0)
	}
	postmortemPath = "paperbench-chaos.postmortem.txt"
	if *traceTo != "" {
		postmortemPath = strings.TrimSuffix(*traceTo, filepath.Ext(*traceTo)) + ".postmortem.txt"
	}
	var srv *telemetry.Server
	if *serve != "" {
		s, err := telemetry.Serve(*serve, tr, flight)
		if err != nil {
			log.Fatal(err)
		}
		srv = s
		log.Printf("telemetry: serving http://%s/metrics (plus /healthz, /flight, /debug/pprof)", srv.Addr())
	}

	ran := false
	run := func(cond bool, f func() error) {
		if !cond && !*all {
			return
		}
		ran = true
		if err := f(); err != nil {
			// A failed study still leaves the flight-recorder postmortem
			// behind — the whole point of the recorder is explaining the
			// run that did not finish.
			if flight != nil {
				if derr := flight.DumpFile(postmortemPath); derr == nil {
					log.Printf("flight-recorder postmortem written to %s", postmortemPath)
				}
			}
			log.Fatal(err)
		}
		fmt.Println()
	}
	run(*table == 1, table1)
	run(*table == 2, table2)
	run(*table == 3, table3)
	run(*table == 4, table4)
	run(*fig == 1, fig1)
	run(*fig == 3, fig3)
	run(*sec54, batchStudy)
	run(*measure, measured)
	run(*massifC, massifComm)
	run(*faults, faultStudy)
	run(*chaos, chaosStudy)
	run(*fleet, fleetStudy)
	run(*sweep, rateSweep)
	run(*sLoad, serveLoadStudy)
	run(*wfqLoad, wfqLoadStudy)
	run(*wLoad, wireLoadStudy)
	run(*fLoad, fleetLoadStudy)
	run(*fChaos, fleetChaosStudy)
	run(jobTracePath != "", jobTraceStudy)
	if !ran && *serve == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *traceTo != "" {
		out, err := os.Create(*traceTo)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.WriteChromeTrace(out); err != nil {
			log.Fatal(err)
		}
		if err := out.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote Chrome trace to %s (load in chrome://tracing or ui.perfetto.dev)", *traceTo)
	}
	if srv != nil {
		log.Printf("telemetry: run complete, still serving http://%s/ — Ctrl-C to exit", srv.Addr())
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
		srv.Close()
	}
}

// tr is the optional run-wide trace; nil (no -trace or -serve flag) makes
// every instrumentation call a no-op.
var tr *obs.Trace

// flight is the per-rank flight recorder, active for chaos and serve runs
// (nil otherwise; all methods are nil-safe). postmortemPath is where the
// chaos study dumps it — next to the Chrome trace artifact when -trace is
// set.
var flight *telemetry.Recorder
var postmortemPath string

func table1() error {
	t := report.New("Table 1 — memory: traditional full-grid FFT vs domain-local FFT (GB)",
		"N", "k", "traditional", "paper", "local (ours)", "paper")
	for _, r := range gpu.Table1() {
		t.Add(r.N, r.K, r.TraditionalGB, r.PaperTraditional, r.LocalGB, r.PaperLocal)
	}
	t.Render(os.Stdout)
	return nil
}

func table2() error {
	rows, err := gpu.Table2()
	if err != nil {
		return err
	}
	t := report.New("Table 2 — largest sub-domain k fitting a single GPU",
		"N", "allowable k", "paper", "device")
	for _, r := range rows {
		t.Add(r.N, r.AllowableK, r.PaperK, r.Device)
	}
	t.Render(os.Stdout)
	return nil
}

func table3() error {
	rows, err := gpu.Table3()
	if err != nil {
		return err
	}
	t := report.New("Table 3 — runtime model: proposed GPU pipeline vs single-CPU FFTW",
		"N", "k", "r", "ours (ms)", "paper", "FFTW (ms)", "paper", "speedup", "paper")
	for _, r := range rows {
		t.Add(r.N, r.K, r.R, r.OursMs, r.PaperOursMs, r.FFTWMs, r.PaperFFTWMs, r.Speedup, r.PaperSpeedup)
	}
	t.Render(os.Stdout)
	return nil
}

func table4() error {
	rows, err := gpu.Table4()
	if err != nil {
		return err
	}
	t := report.New("Table 4 — estimated vs actual GPU memory (cuFFT temporaries) (GB)",
		"N", "k", "r", "estimated", "paper", "actual", "paper", "ratio", "paper")
	for _, r := range rows {
		t.Add(r.N, r.K, r.R, r.EstimatedGB, r.PaperEstimate, r.ActualGB, r.PaperActual,
			r.Ratio, r.PaperActual/r.PaperEstimate)
	}
	t.Render(os.Stdout)
	return nil
}

func fig1() error {
	// Measured: real distributed convolutions on the simulated cluster.
	// One sub-domain per worker with a large N/k ratio, the paper's
	// operating regime (toy ratios make the sparse exchange larger than
	// the transposes; see EXPERIMENTS.md).
	n, k, p := 64, 32, 4
	f := grid.NewField(grid.Cube(n))
	for i := range f.Data {
		f.Data[i] = float64(i%17) / 17
	}
	kernel := green.Gaussian{Sigma: 2}

	cTrad, err := cluster.NewWithOptions(p, cluster.DefaultParams(), cluster.Options{Trace: tr})
	if err != nil {
		return err
	}
	if _, err := cluster.DistFFTConvolve(cTrad, f, kernel); err != nil {
		return err
	}
	tb, tm, tc, ts := cTrad.Stats.Snapshot()

	cPencil, err := cluster.NewWithOptions(p, cluster.DefaultParams(), cluster.Options{Trace: tr})
	if err != nil {
		return err
	}
	if _, err := cluster.PencilFFTConvolve(cPencil, f, kernel); err != nil {
		return err
	}
	pb, pm, pc, ps := cPencil.Stats.Snapshot()

	cOurs, err := cluster.NewWithOptions(p, cluster.DefaultParams(), cluster.Options{Trace: tr})
	if err != nil {
		return err
	}
	if _, err := cluster.LowCommConvolve(cOurs, f, kernel, k, 16, conv.Config{Pruned: true, Trace: tr}); err != nil {
		return err
	}
	ob, om, oc, osim := cOurs.Stats.Snapshot()

	t := report.New(fmt.Sprintf("Fig. 1 — measured communication, N=%d k=%d P=%d (simulated cluster)", n, k, p),
		"pipeline", "all-to-all rounds", "messages", "bytes", "α-β time")
	t.AddCells("traditional FFT (pencil, Eq. 1)", fmt.Sprint(pc), fmt.Sprint(pm), report.Bytes(pb), report.Seconds(ps))
	t.AddCells("traditional FFT (slab)", fmt.Sprint(tc), fmt.Sprint(tm), report.Bytes(tb), report.Seconds(ts))
	t.AddCells("ours (low-comm)", fmt.Sprint(oc), fmt.Sprint(om), report.Bytes(ob), report.Seconds(osim))
	t.Render(os.Stdout)

	// Analytic: Eq. 1 vs Eq. 6 at the paper's scales.
	params := cluster.DefaultParams()
	rows, err := params.CommModel([]int{1024, 2048, 4096, 8192}, 128, 8, 1024)
	if err != nil {
		return err
	}
	t2 := report.New("Fig. 1 / Eq. 1 vs Eq. 6 — per-node communication time model (k=128, r=8, P=1024)",
		"N", "T_Comm,FFT (Eq.1)", "T_ours (Eq.6)", "ratio")
	for _, r := range rows {
		t2.AddCells(fmt.Sprint(r.N), report.Seconds(r.TraditionalSec), report.Seconds(r.OursSec),
			fmt.Sprintf("%.1fx", r.Ratio))
	}
	fmt.Println()
	t2.Render(os.Stdout)
	return nil
}

func fig3() error {
	// The paper's Fig. 3 setting: 32³ sub-domain in a 128³ grid.
	n, k := 128, 32
	dim := grid.Cube(n)
	sub := grid.CubeAt(grid.Point{(n - k) / 2, (n - k) / 2, (n - k) / 2}, k)
	pol := sample.DefaultPolicy(sub, 16)
	tree, err := pol.Tree(dim)
	if err != nil {
		return err
	}
	rateCount := map[int]int{}
	rateVolume := map[int]int{}
	for _, c := range tree.Cells {
		rateCount[c.Rate]++
		rateVolume[c.Rate] += c.Box.Volume()
	}
	t := report.New(fmt.Sprintf("Fig. 3 — octree sampling pattern: %d³ sub-domain in %d³ grid", k, n),
		"rate r", "cells", "volume", "vol %", "samples")
	for _, r := range []int{1, 2, 8, 16} {
		if rateCount[r] == 0 {
			continue
		}
		samples := 0
		for _, c := range tree.Cells {
			if c.Rate == r {
				samples += c.SampleCount()
			}
		}
		t.Add(r, rateCount[r], rateVolume[r],
			100*float64(rateVolume[r])/float64(dim.Len()), samples)
	}
	t.Render(os.Stdout)
	fmt.Printf("\ntotal: %d cells, %d samples of %d grid points (%.1fx compression), metadata %s\n",
		tree.CellCount(), tree.SampleCount(), dim.Len(),
		float64(dim.Len())/float64(tree.SampleCount()), report.Bytes(int64(tree.MetadataBytes())))
	fmt.Println("(render the pattern itself with cmd/octviz)")
	return nil
}

func batchStudy() error {
	rows, err := gpu.BatchStudy()
	if err != nil {
		return err
	}
	t := report.New("§5.4 — speedup from doubling the pencil batch B (model)",
		"N", "k", "r", "B from", "B to", "gain %", "paper %")
	for _, r := range rows {
		t.Add(r.N, r.K, r.R, r.FromB, r.ToB, r.SpeedupPct, r.PaperPct)
	}
	t.Render(os.Stdout)
	return nil
}

func measured() error {
	t := report.New("§5.3 — measured (pure Go): local pipeline vs dense baseline",
		"N", "k", "far r", "rel L2 error", "compression", "local (ms)", "baseline (ms)")
	for _, c := range []struct {
		n, k, far int
		sigma     float64
	}{
		{32, 8, 8, 1.5},
		{64, 16, 16, 2},
		{128, 32, 16, 2},
	} {
		dim := grid.Cube(c.n)
		sub := grid.CubeAt(grid.Point{(c.n - c.k) / 2, (c.n - c.k) / 2, (c.n - c.k) / 2}, c.k)
		kernel := green.Gaussian{Sigma: c.sigma}
		tree, err := sample.DefaultPolicy(sub, c.far).Tree(dim)
		if err != nil {
			return err
		}
		local, err := conv.NewLocal(dim, sub, tree, conv.KernelPointwise(dim, kernel), conv.Config{Pruned: true, Trace: tr})
		if err != nil {
			return err
		}
		// Smooth deterministic input (≤1 cycle per sub-domain edge), the
		// field class MASSIF produces and the sampler is designed for.
		subField := grid.NewField(grid.Cube(c.k))
		for z := 0; z < c.k; z++ {
			for y := 0; y < c.k; y++ {
				for x := 0; x < c.k; x++ {
					fx := float64(x) / float64(c.k)
					fy := float64(y) / float64(c.k)
					fz := float64(z) / float64(c.k)
					subField.Set(x, y, z,
						math.Sin(2*math.Pi*fx)*math.Cos(math.Pi*fy)+0.5*math.Sin(math.Pi*fz))
				}
			}
		}
		start := time.Now()
		res, st, err := local.Run(subField)
		if err != nil {
			return err
		}
		localMs := float64(time.Since(start).Microseconds()) / 1e3
		start = time.Now()
		want, err := conv.BaselineSubdomain(dim, sub, subField, kernel, 0)
		if err != nil {
			return err
		}
		baseMs := float64(time.Since(start).Microseconds()) / 1e3
		dense, err := res.Reconstruct()
		if err != nil {
			return err
		}
		rel, err := grid.RelL2(dense, want)
		if err != nil {
			return err
		}
		t.AddCells(fmt.Sprint(c.n), fmt.Sprint(c.k), fmt.Sprint(c.far),
			fmt.Sprintf("%.4f", rel), fmt.Sprintf("%.1fx", st.Compression),
			fmt.Sprintf("%.1f", localMs), fmt.Sprintf("%.1f", baseMs))
	}
	t.Render(os.Stdout)
	return nil
}

func massifComm() error {
	// Both MASSIF solvers on the simulated cluster for a fixed iteration
	// budget: the per-iteration communication the paper's Fig. 1 argues
	// about, measured on the full tensor pipeline.
	n, k, p, iters := 32, 16, 4, 3
	l1, m1 := green.LameFromENu(210, 0.3)
	l2, m2 := green.LameFromENu(70, 0.3)
	m, err := massif.NewMicrostructure(grid.Cube(n),
		massif.Phase{Lambda: l1, Mu: m1}, massif.Phase{Lambda: l2, Mu: m2})
	if err != nil {
		return err
	}
	if err := m.SetSphere(grid.Point{16, 16, 16}, 8, 1); err != nil {
		return err
	}
	E := grid.SymTensor{0.01, 0, 0, 0, 0, 0}
	opt := massif.Options{Tol: 1e-12, MaxIter: iters, Trace: tr}

	cRef, err := cluster.NewWithOptions(p, cluster.DefaultParams(), cluster.Options{Trace: tr})
	if err != nil {
		return err
	}
	if _, err := massif.SolveReferenceDistributed(cRef, m, E, opt); err != nil {
		return err
	}
	rb, _, rr, rs := cRef.Stats.Snapshot()

	cLow, err := cluster.NewWithOptions(p, cluster.DefaultParams(), cluster.Options{Trace: tr})
	if err != nil {
		return err
	}
	if _, err := massif.SolveLowCommDistributed(cLow, m, E, massif.LowCommOptions{
		Options: opt, SubSize: k, FarRate: 8, Pruned: true,
	}); err != nil {
		return err
	}
	lb, _, lr, ls := cLow.Stats.Snapshot()

	t := report.New(fmt.Sprintf("MASSIF per-iteration communication, N=%d k=%d P=%d (%d iterations measured)", n, k, p, iters),
		"solver", "all-to-all rounds/iter", "bytes/iter", "α-β time/iter")
	t.AddCells("Algorithm 1 (slab FFTs)", fmt.Sprintf("%d", rr/int64(iters)),
		report.Bytes(rb/int64(iters)), report.Seconds(rs/float64(iters)))
	t.AddCells("Algorithm 2 (ours)", fmt.Sprintf("%d", lr/int64(iters)),
		report.Bytes(lb/int64(iters)), report.Seconds(ls/float64(iters)))
	t.Render(os.Stdout)
	return nil
}

// rmsExcluding measures the RMS of a-b over the whole grid with the voxels
// inside skip zeroed — the surviving-region error of a degraded run,
// normalized like sample.MissingMass.L2 (RMS over N³) so the two compare
// directly.
func rmsExcluding(a, b *grid.Field, skip []grid.Box) (float64, error) {
	if a.Dim != b.Dim {
		return 0, fmt.Errorf("paperbench: grid mismatch %v vs %v", a.Dim, b.Dim)
	}
	d := a.Dim
	var sum float64
	for z := 0; z < d.Nz; z++ {
		for y := 0; y < d.Ny; y++ {
		next:
			for x := 0; x < d.Nx; x++ {
				for _, bx := range skip {
					if bx.Contains(x, y, z) {
						continue next
					}
				}
				dv := a.At(x, y, z) - b.At(x, y, z)
				sum += dv * dv
			}
		}
	}
	return math.Sqrt(sum / float64(d.Len())), nil
}

func faultStudy() error {
	// Part 1 — the single sparse exchange of the low-comm convolution on a
	// lossy fabric. Transient faults (drops, corruption, duplicates, delays)
	// heal through the deadline/retry layer and reproduce the fault-free
	// field bit-identically; a crashed worker degrades the result instead,
	// with the omission covered by the missing-mass bound.
	n, k, p := 32, 8, 4
	f := grid.NewField(grid.Cube(n))
	for i := range f.Data {
		f.Data[i] = float64(i%17) / 17
	}
	kernel := green.Gaussian{Sigma: 2}
	cfg := conv.Config{Pruned: true}

	cRef, err := cluster.New(p, cluster.DefaultParams())
	if err != nil {
		return err
	}
	ref, err := cluster.LowCommConvolve(cRef, f, kernel, k, 16, cfg)
	if err != nil {
		return err
	}

	t := report.New(fmt.Sprintf("Fault injection — low-comm convolution on a lossy fabric, N=%d k=%d P=%d (seeded schedules)", n, k, p),
		"fault plan", "outcome", "RMS err (surviving)", "retransmits", "timeouts", "dead", "missing-mass RMS bound")
	var crashStats cluster.FaultStats
	for _, pl := range []struct {
		name string
		plan cluster.FaultPlan
	}{
		{"drop 10%", cluster.FaultPlan{Seed: 7, DropProb: 0.10}},
		{"drop 30%", cluster.FaultPlan{Seed: 7, DropProb: 0.30}},
		{"corrupt 20%", cluster.FaultPlan{Seed: 7, CorruptProb: 0.20}},
		{"dup 30% + delay 30%", cluster.FaultPlan{Seed: 7, DupProb: 0.30, DelayProb: 0.30, Delay: time.Millisecond}},
		{"crash worker 3 at op 1", cluster.FaultPlan{Seed: 7, CrashWorker: 3, CrashAtOp: 1}},
	} {
		inj := cluster.NewFaultInjector(pl.plan)
		// Deadline well above scheduler noise: the injected-fault schedule
		// is seeded, but a too-tight deadline adds genuine (timing-
		// dependent) timeouts to the retry counters on a loaded machine.
		c, err := cluster.NewWithOptions(p, cluster.DefaultParams(), cluster.Options{
			RecvTimeout: 50 * time.Millisecond,
			RetryBudget: 4,
			Transport:   inj,
		})
		if err != nil {
			return err
		}
		res, err := cluster.LowCommConvolve(c, f, kernel, k, 16, cfg)
		if err != nil {
			return err
		}
		rms, err := rmsExcluding(res.Field, ref.Field, res.LostRegions)
		if err != nil {
			return err
		}
		outcome, bound := "healed", "—"
		if res.Degraded {
			outcome = fmt.Sprintf("degraded, dead %v", res.Missing)
			bound = fmt.Sprintf("%.3g", res.Bound.Missing.L2)
		} else if rms == 0 {
			outcome = "healed bit-identical"
		}
		fs := c.Stats.FaultSnapshot()
		if pl.plan.CrashAtOp > 0 {
			crashStats = fs
		}
		t.AddCells(pl.name, outcome, fmt.Sprintf("%.3g", rms),
			fmt.Sprint(fs.Retransmits), fmt.Sprint(fs.Timeouts),
			fmt.Sprint(fs.DeadWorkers), bound)
	}
	t.Render(os.Stdout)
	fmt.Println()
	report.FaultTable("Transport counters — crash schedule",
		crashStats.Retransmits, crashStats.Timeouts, crashStats.CorruptDropped,
		crashStats.DupDropped, crashStats.DeadWorkers).Render(os.Stdout)

	// Part 2 — MASSIF with a worker crashing mid-solve: worker 3 dies inside
	// iteration 2's sparse all-to-all, survivors restart the iteration from
	// their strain checkpoint, and the degraded solve still converges within
	// the paper's tolerance of the serial solve.
	l1, m1 := green.LameFromENu(210, 0.3)
	l2, m2 := green.LameFromENu(70, 0.3)
	mst, err := massif.NewMicrostructure(grid.Cube(16),
		massif.Phase{Lambda: l1, Mu: m1}, massif.Phase{Lambda: l2, Mu: m2})
	if err != nil {
		return err
	}
	if err := mst.SetSphere(grid.Point{4, 4, 4}, 2, 1); err != nil {
		return err
	}
	E := grid.SymTensor{0.01, 0, 0, 0, 0, 0.002}
	opt := massif.LowCommOptions{
		Options: massif.Options{Tol: 1e-4, MaxIter: 40},
		SubSize: 8, FullRes: true, Pruned: true,
	}
	serial, err := massif.SolveLowComm(mst, E, opt)
	if err != nil {
		return err
	}
	inj := cluster.NewFaultInjector(cluster.FaultPlan{Seed: 1, CrashWorker: 3, CrashAtOp: 5})
	cm, err := cluster.NewWithOptions(4, cluster.DefaultParams(), cluster.Options{
		RecvTimeout: 20 * time.Millisecond,
		RetryBudget: 3,
		Transport:   inj,
	})
	if err != nil {
		return err
	}
	dist, err := massif.SolveLowCommDistributed(cm, mst, E, opt)
	if err != nil {
		return err
	}
	rel, err := grid.RelL2Tensor(dist.Strain, serial.Strain)
	if err != nil {
		return err
	}
	fmt.Println()
	t2 := report.New("MASSIF under a mid-solve crash — N=16 k=8 P=4, worker 3 killed in iteration 2's all-to-all",
		"solve", "iterations", "converged", "checkpoint restarts", "dead ranks", "rel L2 strain vs serial")
	t2.AddCells("serial (fault-free reference)", fmt.Sprint(serial.Iterations),
		fmt.Sprint(serial.Converged), "0", "[]", "0")
	t2.AddCells("distributed, degraded", fmt.Sprint(dist.Iterations),
		fmt.Sprint(dist.Converged), fmt.Sprint(dist.Fault.Restarts),
		fmt.Sprint(dist.Fault.Dead), fmt.Sprintf("%.4f", rel))
	t2.Render(os.Stdout)
	return nil
}

// ckptDir is where the -chaos study keeps its durable checkpoints
// (-ckpt-dir flag); empty selects a fresh OS temp directory.
var ckptDir string

func chaosStudy() error {
	// The self-healing solve under seeded chaos: worker crashes (including
	// rank 0) respawn from durable checkpoints with zero frozen
	// sub-domains, an injected straggler is speculatively re-executed by
	// an idle peer, and an OOM-constrained fleet auto-refines k instead of
	// failing. The same problem as the -faults crash study so degraded and
	// healed solves compare directly.
	base := ckptDir
	if base == "" {
		d, err := os.MkdirTemp("", "paperbench-chaos-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(d)
		base = d
	}
	l1, m1 := green.LameFromENu(210, 0.3)
	l2, m2 := green.LameFromENu(70, 0.3)
	mst, err := massif.NewMicrostructure(grid.Cube(16),
		massif.Phase{Lambda: l1, Mu: m1}, massif.Phase{Lambda: l2, Mu: m2})
	if err != nil {
		return err
	}
	if err := mst.SetSphere(grid.Point{4, 4, 4}, 2, 1); err != nil {
		return err
	}
	E := grid.SymTensor{0.01, 0, 0, 0, 0, 0.002}
	opt := massif.LowCommOptions{
		Options: massif.Options{Tol: 1e-4, MaxIter: 40, Trace: tr},
		SubSize: 8, FullRes: true, Pruned: true,
	}
	serial, err := massif.SolveLowComm(mst, E, opt)
	if err != nil {
		return err
	}

	t := report.New("Self-healing MASSIF under seeded chaos — N=16 k=8, crashes respawn from durable checkpoints",
		"schedule", "P", "generations", "respawned", "spec wins", "k refine", "ckpt bytes", "converged", "rel L2 vs serial")
	addRow := func(name string, p int, res *massif.LowCommResult) error {
		rel, err := grid.RelL2Tensor(res.Strain, serial.Strain)
		if err != nil {
			return err
		}
		h := res.Heal
		t.AddCells(name, fmt.Sprint(p), fmt.Sprint(h.Generations),
			fmt.Sprint(h.Respawned), fmt.Sprint(h.SpeculativeWins),
			fmt.Sprintf("k=%d (%d)", h.SubSize, h.KRefinements),
			report.Bytes(h.CheckpointBytes), fmt.Sprint(res.Converged),
			fmt.Sprintf("%.4f", rel))
		return nil
	}
	healTrace := func() *obs.Trace {
		if tr != nil {
			return tr
		}
		return obs.New()
	}

	for _, sc := range []struct {
		name    string
		p       int
		crashes []cluster.CrashPoint
	}{
		{"crash worker 1, iter 1", 2, []cluster.CrashPoint{{Worker: 1, Op: 3}}},
		{"crash root, then worker 2", 4, []cluster.CrashPoint{{Worker: 0, Op: 5}, {Worker: 2, Op: 9}}},
		{"crash workers 3 and 5", 7, []cluster.CrashPoint{{Worker: 3, Op: 3}, {Worker: 5, Op: 9}}},
	} {
		store, err := ckpt.NewStore(filepath.Join(base, fmt.Sprintf("p%d", sc.p)), healTrace())
		if err != nil {
			return err
		}
		inj := cluster.NewFaultInjector(cluster.FaultPlan{Seed: 7, Crashes: sc.crashes})
		c, err := cluster.NewWithOptions(sc.p, cluster.DefaultParams(), cluster.Options{
			RecvTimeout: 50 * time.Millisecond,
			RetryBudget: 4,
			Transport:   inj,
			Trace:       tr,
			Flight:      flight,
		})
		if err != nil {
			return err
		}
		hopt := opt
		hopt.Heal = &massif.HealOptions{
			Store:     store,
			Supervise: supervise.Options{Trace: healTrace()},
			Flight:    flight,
		}
		res, err := massif.SolveLowCommDistributed(c, mst, E, hopt)
		if err != nil {
			return err
		}
		if err := addRow(sc.name, sc.p, res); err != nil {
			return err
		}
	}

	// Straggler schedule: a deterministic 1.5s sleep on worker 1; the
	// idle peer re-executes its sub-domains from the durable checkpoint.
	var schedule *supervise.ChaosSchedule
	for seed := uint64(1); seed < 10000; seed++ {
		cs := &supervise.ChaosSchedule{Seed: seed, StraggleProb: 0.25, StraggleDelay: 1500 * time.Millisecond}
		hits, ok := 0, true
		for it := 0; it < 6 && ok; it++ {
			if cs.Delay(0, it) > 0 {
				ok = false
			}
			if cs.Delay(1, it) > 0 {
				if it < 2 {
					ok = false
				}
				hits++
			}
		}
		if ok && hits == 1 {
			schedule = cs
			break
		}
	}
	store, err := ckpt.NewStore(filepath.Join(base, "straggler"), healTrace())
	if err != nil {
		return err
	}
	c, err := cluster.NewWithOptions(2, cluster.DefaultParams(), cluster.Options{
		RecvTimeout: 500 * time.Millisecond,
		RetryBudget: 4,
		Trace:       tr,
		Flight:      flight,
	})
	if err != nil {
		return err
	}
	sopt := opt
	sopt.MaxIter = 6
	sopt.Tol = 1e-9
	sopt.FullRes = false
	sopt.FarRate = 4
	sopt.Heal = &massif.HealOptions{
		Store:     store,
		Chaos:     schedule,
		Supervise: supervise.Options{Trace: healTrace()},
		Flight:    flight,
	}
	res, err := massif.SolveLowCommDistributed(c, mst, E, sopt)
	if err != nil {
		return err
	}
	if err := addRow("straggle worker 1 by 1.5s", 2, res); err != nil {
		return err
	}

	// OOM schedule: V100-16GB fleet pre-filled so the k=8 plan does not
	// fit but the k=4 plan does — admission refines instead of failing.
	oopt := opt
	oopt.MaxIter = 6
	oopt.FullRes = false
	oopt.FarRate = 4
	charge8 := massif.HealWorkerBytes(mst.Dim, 2, oopt)
	o4 := oopt
	o4.SubSize = 4
	charge4 := massif.HealWorkerBytes(mst.Dim, 2, o4)
	free := charge4 + (charge8-charge4)/2
	devs := make([]*gpu.Device, 2)
	for i := range devs {
		d := gpu.V100_16GB()
		if _, err := d.Alloc(d.Capacity - free); err != nil {
			return err
		}
		devs[i] = d
	}
	store, err = ckpt.NewStore(filepath.Join(base, "oom"), healTrace())
	if err != nil {
		return err
	}
	c, err = cluster.NewWithOptions(2, cluster.DefaultParams(), cluster.Options{Trace: tr, Flight: flight})
	if err != nil {
		return err
	}
	oopt.Heal = &massif.HealOptions{
		Store:     store,
		Devices:   devs,
		Supervise: supervise.Options{Trace: healTrace()},
		Flight:    flight,
	}
	res, err = massif.SolveLowCommDistributed(c, mst, E, oopt)
	if err != nil {
		return err
	}
	if err := addRow("OOM fleet, auto-refine k", 2, res); err != nil {
		return err
	}
	t.Render(os.Stdout)
	fmt.Printf("\ndurable checkpoints under %s (override with -ckpt-dir)\n", base)
	if err := flight.DumpFile(postmortemPath); err != nil {
		return err
	}
	fmt.Printf("flight-recorder postmortem written to %s\n", postmortemPath)
	return nil
}

func fleetStudy() error {
	rows, err := gpu.DGX2BatchStudy()
	if err != nil {
		return err
	}
	t := report.New("§5.1 batching — sub-domain convolutions per DGX-2 node (16× V100-32GB, model)",
		"N", "k", "r", "concurrent/GPU", "s/conv", "conv/s per node")
	for _, r := range rows {
		t.AddCells(fmt.Sprint(r.N), fmt.Sprint(r.K), fmt.Sprint(r.R),
			fmt.Sprint(r.PerGPU), report.Seconds(r.ConvSec), fmt.Sprintf("%.1f", r.NodePerSec))
	}
	t.Render(os.Stdout)
	return nil
}

func rateSweep() error {
	// The §5.4 dial, measured for real: "the downsampling rate r can be
	// increased to reduce the memory requirement further if needed, but at
	// the cost of accuracy". Corner sub-domain so every rate band exists.
	n, k := 64, 8
	dim := grid.Cube(n)
	sub := grid.CubeAt(grid.Point{0, 0, 0}, k)
	kernel := green.Gaussian{Sigma: 2}
	subField := grid.NewField(grid.Cube(k))
	for z := 0; z < k; z++ {
		for y := 0; y < k; y++ {
			for x := 0; x < k; x++ {
				dx, dy, dz := float64(x-k/2), float64(y-k/2), float64(z-k/2)
				subField.Set(x, y, z, math.Exp(-(dx*dx+dy*dy+dz*dz)/6))
			}
		}
	}
	want, err := conv.BaselineSubdomain(dim, sub, subField, kernel, 0)
	if err != nil {
		return err
	}
	t := report.New(fmt.Sprintf("§5.4 measured accuracy/compression tradeoff, N=%d k=%d (no edge band)", n, k),
		"far r", "samples", "compression", "rel L2 error")
	for _, far := range []int{2, 4, 8, 16, 32} {
		pol := sample.Policy{Sub: sub, NearRate: 2, MidRate: 8, FarRate: far}
		if far < 8 {
			pol.MidRate = far
		}
		tree, err := pol.Tree(dim)
		if err != nil {
			return err
		}
		local, err := conv.NewLocal(dim, sub, tree, conv.KernelPointwise(dim, kernel),
			conv.Config{Pruned: true})
		if err != nil {
			return err
		}
		res, st, err := local.Run(subField)
		if err != nil {
			return err
		}
		dense, err := res.Reconstruct()
		if err != nil {
			return err
		}
		rel, err := grid.RelL2(dense, want)
		if err != nil {
			return err
		}
		t.AddCells(fmt.Sprint(far), fmt.Sprint(st.SampleCount),
			fmt.Sprintf("%.1fx", st.Compression), fmt.Sprintf("%.5f", rel))
	}
	t.Render(os.Stdout)
	return nil
}
