package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"time"

	"lowcomm3d/internal/gpu"
	"lowcomm3d/internal/green"
	"lowcomm3d/internal/grid"
	"lowcomm3d/internal/obs/jobtrace"
	"lowcomm3d/internal/report"
	"lowcomm3d/internal/serve"
)

// jobTracePath is where -job-trace writes the Chrome-trace artifact.
var jobTracePath string

// jobTraceStudy runs a small multi-tenant workload through the serving
// engine with per-job lifecycle tracing on, writes the Chrome trace
// (chrome://tracing / Perfetto JSON) of every job's timeline to the
// -job-trace path, and prints the per-tenant SLO breakdown: end-to-end
// latency decomposed into the place/queue/compute/stream phases that the
// lowcomm_job_phase_seconds exposition serves in production. The phases
// partition e2e exactly, so the shares column always sums to 100%.
func jobTraceStudy() error {
	if jobTracePath == "" {
		jobTracePath = "paperbench-jobtrace.json"
	}
	const (
		n         = 64
		k         = 16
		perTenant = 8
		seed      = 42
	)
	tenants := []string{"astro", "fluids", "imaging"}
	boxes := []grid.Box{
		grid.CubeAt(grid.Point{0, 0, 0}, k),
		grid.CubeAt(grid.Point{16, 16, 16}, k),
		grid.CubeAt(grid.Point{32, 32, 32}, k),
		grid.CubeAt(grid.Point{48, 48, 48}, k),
	}
	rng := rand.New(rand.NewSource(seed))
	inputs := make([]*grid.Field, len(boxes))
	for i := range inputs {
		f := grid.NewField(grid.Cube(k))
		for j := range f.Data {
			f.Data[j] = rng.NormFloat64()
		}
		inputs[i] = f
	}

	col := jobtrace.NewCollector()
	eng, err := serve.New(serve.Options{
		Dim: grid.Cube(n), Kernel: green.Gaussian{Sigma: 2}, FarRate: 8,
		Pruned: true, Workers: 2, Device: gpu.V100_16GB(), Jobs: col,
	})
	if err != nil {
		return err
	}
	defer eng.Drain()

	for i := 0; i < perTenant; i++ {
		for _, tenant := range tenants {
			res, err := eng.Submit(context.Background(), tenant, boxes[i%len(boxes)], inputs[i%len(boxes)])
			if err != nil {
				return err
			}
			res.Release()
		}
	}

	t := report.New(fmt.Sprintf("per-job tracing — tenant SLO breakdown, N=%d k=%d, %d jobs/tenant, 2 workers",
		n, k, perTenant),
		"tenant", "jobs", "e2e mean", "place", "queue", "compute", "stream")
	share := func(part, whole int64) string {
		if whole <= 0 {
			return "—"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(whole))
	}
	for _, tp := range col.PhaseSnapshots() {
		if tp.E2E.Count == 0 {
			continue
		}
		mean := time.Duration(tp.E2E.SumNs / tp.E2E.Count)
		t.AddCells(tp.Tenant, fmt.Sprint(tp.E2E.Count), report.Seconds(mean.Seconds()),
			share(tp.Place.SumNs, tp.E2E.SumNs), share(tp.Queue.SumNs, tp.E2E.SumNs),
			share(tp.Compute.SumNs, tp.E2E.SumNs), share(tp.Stream.SumNs, tp.E2E.SumNs))
	}
	t.Render(os.Stdout)

	out, err := os.Create(jobTracePath)
	if err != nil {
		return err
	}
	if err := col.WriteChromeTrace(out); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Printf("\nwrote %d job timelines to %s (load in chrome://tracing or ui.perfetto.dev)\n",
		len(col.Jobs()), jobTracePath)
	return nil
}
