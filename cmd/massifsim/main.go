// Command massifsim runs the MASSIF stress–strain simulation (the paper's
// §2.2 use case) on a two-phase composite microstructure, with either the
// traditional full-grid spectral solver (Algorithm 1) or the proposed
// low-communication solver (Algorithm 2), and reports the effective
// response and communication accounting:
//
//	massifsim -n 32 -micro sphere -solver both
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"lowcomm3d/internal/cluster"
	"lowcomm3d/internal/green"
	"lowcomm3d/internal/grid"
	"lowcomm3d/internal/massif"
	"lowcomm3d/internal/obs"
	"lowcomm3d/internal/report"
	"lowcomm3d/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("massifsim: ")
	var (
		n         = flag.Int("n", 32, "grid size N (power of two)")
		micro     = flag.String("micro", "sphere", "microstructure: sphere | laminate | voronoi | homogeneous")
		solver    = flag.String("solver", "both", "solver: reference | accelerated | lowcomm | distributed | both | all")
		workers   = flag.Int("P", 4, "simulated workers for the distributed solver")
		subSize   = flag.Int("k", 0, "low-comm sub-domain size (0 = N/2)")
		far       = flag.Int("far", 8, "low-comm far-field rate")
		tol       = flag.Float64("tol", 1e-5, "convergence tolerance on ‖Δε‖/‖ε⁰‖")
		maxIter   = flag.Int("maxiter", 200, "iteration cap")
		exx       = flag.Float64("exx", 0.01, "applied axial strain E_xx")
		contrastE = flag.Float64("contrast", 3, "Young's modulus contrast between phases")
		serve     = flag.String("serve", "", "serve live telemetry (/metrics, /healthz, /debug/pprof) on this address, e.g. :8080, and block after the run")
	)
	flag.Parse()

	var tr *obs.Trace
	var srv *telemetry.Server
	if *serve != "" {
		tr = obs.New()
		s, err := telemetry.Serve(*serve, tr, nil)
		if err != nil {
			log.Fatal(err)
		}
		srv = s
		log.Printf("telemetry: serving http://%s/metrics (plus /healthz, /debug/pprof)", srv.Addr())
	}

	l1, m1 := green.LameFromENu(210, 0.3)
	l2, m2 := green.LameFromENu(210 / *contrastE, 0.3)
	m, err := massif.NewMicrostructure(grid.Cube(*n),
		massif.Phase{Lambda: l1, Mu: m1}, massif.Phase{Lambda: l2, Mu: m2})
	if err != nil {
		log.Fatal(err)
	}
	switch *micro {
	case "sphere":
		if err := m.SetSphere(grid.Point{*n / 2, *n / 2, *n / 2}, float64(*n)/4, 1); err != nil {
			log.Fatal(err)
		}
	case "laminate":
		if err := m.SetLaminate(0, *n/2, *n, 1); err != nil {
			log.Fatal(err)
		}
	case "voronoi":
		if err := m.SetVoronoi(8, 42); err != nil {
			log.Fatal(err)
		}
	case "homogeneous":
		// phase 0 everywhere
	default:
		log.Fatalf("unknown microstructure %q", *micro)
	}
	E := grid.SymTensor{*exx, 0, 0, 0, 0, 0}
	opt := massif.Options{Tol: *tol, MaxIter: *maxIter, Trace: tr}
	if *subSize == 0 {
		*subSize = *n / 2
	}

	t := report.New(fmt.Sprintf("MASSIF %s composite, N=%d, E_xx=%g, phase-1 fraction %.3f",
		*micro, *n, *exx, m.VolumeFraction(1)),
		"solver", "iters", "converged", "mean σ_xx", "residual", "comm bytes/iter")

	if *solver == "reference" || *solver == "both" || *solver == "all" {
		res, err := massif.SolveReference(m, E, opt)
		if err != nil {
			log.Fatal(err)
		}
		t.AddCells("reference (Alg. 1)", fmt.Sprint(res.Iterations), fmt.Sprint(res.Converged),
			fmt.Sprintf("%.6f", res.MeanStress()[grid.VXX]),
			fmt.Sprintf("%.2e", last(res.Residuals)),
			report.Bytes(8*int64(m.Dim.Len())*grid.NumVoigt*4)+" (4 transposes)")
	}
	if *solver == "accelerated" || *solver == "all" {
		res, err := massif.SolveAccelerated(m, E, opt)
		if err != nil {
			log.Fatal(err)
		}
		t.AddCells("accelerated (CG)", fmt.Sprint(res.Iterations), fmt.Sprint(res.Converged),
			fmt.Sprintf("%.6f", res.MeanStress()[grid.VXX]),
			fmt.Sprintf("%.2e", last(res.Residuals)),
			report.Bytes(8*int64(m.Dim.Len())*grid.NumVoigt*4)+" (4 transposes)")
	}
	if *solver == "distributed" || *solver == "all" {
		cl, err := cluster.NewWithOptions(*workers, cluster.DefaultParams(), cluster.Options{Trace: tr})
		if err != nil {
			log.Fatal(err)
		}
		res, err := massif.SolveLowCommDistributed(cl, m, E, massif.LowCommOptions{
			Options: opt, SubSize: *subSize, FarRate: *far, Pruned: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		bytes, _, colls, _ := cl.Stats.Snapshot()
		t.AddCells(fmt.Sprintf("distributed (P=%d, k=%d r=%d)", *workers, *subSize, *far),
			fmt.Sprint(res.Iterations), fmt.Sprint(res.Converged),
			fmt.Sprintf("%.6f", res.MeanStress()[grid.VXX]),
			fmt.Sprintf("%.2e", last(res.Residuals)),
			fmt.Sprintf("%s measured, %d exchanges", report.Bytes(bytes), colls))
	}
	if *solver == "lowcomm" || *solver == "both" || *solver == "all" {
		res, err := massif.SolveLowComm(m, E, massif.LowCommOptions{
			Options: opt, SubSize: *subSize, FarRate: *far, Pruned: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		t.AddCells(fmt.Sprintf("low-comm (Alg. 2, k=%d r=%d)", *subSize, *far),
			fmt.Sprint(res.Iterations), fmt.Sprint(res.Converged),
			fmt.Sprintf("%.6f", res.MeanStress()[grid.VXX]),
			fmt.Sprintf("%.2e", last(res.Residuals)),
			report.Bytes(int64(res.Comm.BytesPerIter))+" (1 sparse exchange)")
	}
	t.Render(os.Stdout)
	if srv != nil {
		log.Printf("telemetry: run complete, still serving http://%s/ — Ctrl-C to exit", srv.Addr())
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
		srv.Close()
	}
}

func last(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return xs[len(xs)-1]
}
