// Command convlocal runs one domain-local convolution (the paper's §4
// proof-of-concept unit) and reports error, compression and footprint
// against the dense baseline:
//
//	convlocal -n 64 -k 16 -far 16 -sigma 2
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"time"

	"lowcomm3d/internal/conv"
	"lowcomm3d/internal/gpu"
	"lowcomm3d/internal/green"
	"lowcomm3d/internal/grid"
	"lowcomm3d/internal/report"
	"lowcomm3d/internal/sample"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("convlocal: ")
	var (
		n      = flag.Int("n", 64, "grid size N (power of two)")
		k      = flag.Int("k", 16, "sub-domain size k")
		far    = flag.Int("far", 16, "far-field downsampling rate")
		sigma  = flag.Float64("sigma", 2, "Gaussian kernel width (grid cells)")
		batch  = flag.Int("batch", 0, "pencil batch size B (0 = all)")
		pruned = flag.Bool("pruned", true, "use input-pruned transforms")
		model  = flag.Bool("model", false, "print the analytic GPU memory model instead of running (works at paper scales, e.g. -n 2048)")
	)
	flag.Parse()

	if *model {
		m, err := gpu.LocalConvMemory(*n, *k, *far)
		if err != nil {
			log.Fatal(err)
		}
		t := report.New(fmt.Sprintf("analytic GPU memory model: N=%d k=%d r=%d", *n, *k, *far),
			"buffer", "bytes")
		t.AddCells("sub-domain input", report.Bytes(m.SubDomain))
		t.AddCells("slab in", report.Bytes(m.SlabIn))
		t.AddCells("slab out", report.Bytes(m.SlabOut))
		t.AddCells("plane chunk in", report.Bytes(m.ChunkIn))
		t.AddCells("plane chunk out", report.Bytes(m.ChunkOut))
		t.AddCells("compressed samples", report.Bytes(m.Samples))
		t.AddCells("cuFFT workspace", report.Bytes(m.CufftWork))
		t.AddCells("estimated total", report.Bytes(m.Estimated()))
		t.AddCells("actual total", report.Bytes(m.Actual()))
		t.Render(os.Stdout)
		for _, dev := range []*gpu.Device{gpu.V100_16GB(), gpu.V100_32GB()} {
			ok, peak := m.FitsOn(dev)
			fmt.Printf("fits %s: %v (peak %s)\n", dev.Name, ok, report.Bytes(peak))
		}
		return
	}

	dim := grid.Cube(*n)
	sub := grid.CubeAt(grid.Point{(*n - *k) / 2, (*n - *k) / 2, (*n - *k) / 2}, *k)
	kernel := green.Gaussian{Sigma: *sigma}
	tree, err := sample.DefaultPolicy(sub, *far).Tree(dim)
	if err != nil {
		log.Fatal(err)
	}
	local, err := conv.NewLocal(dim, sub, tree, conv.KernelPointwise(dim, kernel),
		conv.Config{BatchB: *batch, Pruned: *pruned})
	if err != nil {
		log.Fatal(err)
	}

	// Smooth deterministic sub-domain input.
	subField := grid.NewField(grid.Cube(*k))
	for z := 0; z < *k; z++ {
		for y := 0; y < *k; y++ {
			for x := 0; x < *k; x++ {
				fx := float64(x) / float64(*k)
				fy := float64(y) / float64(*k)
				fz := float64(z) / float64(*k)
				subField.Set(x, y, z,
					math.Sin(2*math.Pi*fx)*math.Cos(math.Pi*fy)+0.5*math.Sin(math.Pi*fz))
			}
		}
	}

	start := time.Now()
	res, st, err := local.Run(subField)
	if err != nil {
		log.Fatal(err)
	}
	localDur := time.Since(start)

	start = time.Now()
	want, err := conv.BaselineSubdomain(dim, sub, subField, kernel, 0)
	if err != nil {
		log.Fatal(err)
	}
	baseDur := time.Since(start)

	dense, err := res.Reconstruct()
	if err != nil {
		log.Fatal(err)
	}
	rel, err := grid.RelL2(dense, want)
	if err != nil {
		log.Fatal(err)
	}

	t := report.New(fmt.Sprintf("local convolution: N=%d k=%d far=%d σ=%g pruned=%v",
		*n, *k, *far, *sigma, *pruned), "metric", "value")
	t.AddCells("rel L2 error", fmt.Sprintf("%.4f", rel))
	t.AddCells("compression", fmt.Sprintf("%.1fx", st.Compression))
	t.AddCells("samples", fmt.Sprint(st.SampleCount))
	t.AddCells("kept z planes", fmt.Sprintf("%d of %d", st.KeptZPlanes, *n))
	t.AddCells("slab bytes", report.Bytes(int64(st.SlabBytes)))
	t.AddCells("planes bytes", report.Bytes(int64(st.PlanesBytes)))
	t.AddCells("compressed bytes", report.Bytes(int64(st.SampleBytes)))
	t.AddCells("dense result bytes", report.Bytes(8*int64(dim.Len())))
	t.AddCells("paper model 8·N²·k", report.Bytes(int64(st.ModelBytes)))
	t.AddCells("local runtime", localDur.String())
	t.AddCells("baseline runtime", baseDur.String())
	t.Render(os.Stdout)
}
