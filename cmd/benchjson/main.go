// Command benchjson converts `go test -bench` text output into a stable
// JSON document for regression tracking. It reads the benchmark stream on
// stdin, echoes it unchanged to stdout (so `make bench` still shows the
// familiar text), and writes the parsed results to the file given by -o.
//
//	go test -bench=. -benchmem ./... | benchjson -o BENCH.json
//
// Every metric on a result line is kept, including custom ones emitted via
// testing.B.ReportMetric, so model-cost counters (flops/op, bytes/op)
// travel next to ns/op in the same record.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line: name split from the -P procs suffix, the
// iteration count, and every "value unit" metric pair that followed it.
type Result struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the whole document: the environment header go test prints,
// plus every benchmark parsed from the stream.
type Report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
	Failed     []string `json:"failed_packages,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "", "write the JSON report to this file (default stdout only gets the echoed text)")
	flag.Parse()

	rep, err := parse(os.Stdin, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		log.Fatal("no benchmark results found in input")
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d benchmark results to %s", len(rep.Benchmarks), *out)
	if len(rep.Failed) > 0 {
		log.Fatalf("benchmark stream reported failures in: %s", strings.Join(rep.Failed, ", "))
	}
}

func parse(r io.Reader, echo io.Writer) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "FAIL\t"):
			f := strings.Fields(line)
			if len(f) >= 2 {
				rep.Failed = append(rep.Failed, f[1])
			}
		case strings.HasPrefix(line, "Benchmark"):
			if res, ok := parseResult(line); ok {
				res.Pkg = pkg
				rep.Benchmarks = append(rep.Benchmarks, res)
			}
		}
	}
	return rep, sc.Err()
}

// parseResult decodes one result line:
//
//	BenchmarkFFT1D/n=256-8  50000  30123 ns/op  8192 B/op  3 allocs/op
func parseResult(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	// Split the GOMAXPROCS suffix the bench runner appends to the name.
	if i := strings.LastIndex(res.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(res.Name[i+1:]); err == nil {
			res.Name, res.Procs = res.Name[:i], p
		}
	}
	// The remainder alternates "value unit".
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, len(res.Metrics) > 0
}
