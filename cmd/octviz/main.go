// Command octviz renders the paper's Fig. 3: the octree-based adaptive
// sampling pattern for a k³ sub-domain inside an N³ grid, as an ASCII
// density map of a z slice plus per-rate statistics.
//
//	octviz -n 128 -k 32 -far 16 -z 64
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"lowcomm3d/internal/grid"
	"lowcomm3d/internal/octree"
	"lowcomm3d/internal/report"
	"lowcomm3d/internal/sample"
)

// glyphs maps a downsampling rate to a display character: denser sampling
// renders darker.
func glyph(rate int) byte {
	switch {
	case rate <= 1:
		return '#'
	case rate == 2:
		return '+'
	case rate <= 8:
		return '.'
	default:
		return ' '
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("octviz: ")
	var (
		n    = flag.Int("n", 128, "grid size N (power of two)")
		k    = flag.Int("k", 32, "sub-domain size k")
		far  = flag.Int("far", 16, "far-field downsampling rate")
		z    = flag.Int("z", -1, "z slice to render (-1 = center)")
		cell = flag.Int("cell", 0, "downscale the rendering by this factor (0 = fit 64 columns)")
	)
	flag.Parse()
	if *z < 0 {
		*z = *n / 2
	}
	if *z >= *n {
		log.Fatalf("z=%d outside grid of size %d", *z, *n)
	}

	dim := grid.Cube(*n)
	sub := grid.CubeAt(grid.Point{(*n - *k) / 2, (*n - *k) / 2, (*n - *k) / 2}, *k)
	pol := sample.DefaultPolicy(sub, *far)
	tree, err := pol.Tree(dim)
	if err != nil {
		log.Fatal(err)
	}

	loc := octree.NewLocator(tree)
	scale := *cell
	if scale <= 0 {
		scale = *n / 64
		if scale < 1 {
			scale = 1
		}
	}
	fmt.Printf("sampling pattern, z=%d (legend: '#' r=1, '+' r=2, '.' r≤8, ' ' coarser; %dx%d cells shown)\n\n",
		*z, *n/scale, *n/scale)
	for y := 0; y < *n; y += scale {
		row := make([]byte, 0, *n/scale)
		for x := 0; x < *n; x += scale {
			ci := loc.Find(x, y, *z)
			if ci < 0 {
				row = append(row, '?')
				continue
			}
			row = append(row, glyph(tree.Cells[ci].Rate))
		}
		fmt.Println(string(row))
	}

	fmt.Println()
	t := report.New("per-rate statistics", "rate", "cells", "volume %", "samples")
	byRate := map[int][3]int{}
	for _, c := range tree.Cells {
		e := byRate[c.Rate]
		e[0]++
		e[1] += c.Box.Volume()
		e[2] += c.SampleCount()
		byRate[c.Rate] = e
	}
	for r := 1; r <= tree.MaxRate(); r <<= 1 {
		if e, ok := byRate[r]; ok {
			t.Add(r, e[0], 100*float64(e[1])/float64(dim.Len()), e[2])
		}
	}
	t.Render(os.Stdout)
	fmt.Printf("\n%d samples of %d points: %.1fx compression, metadata %s\n",
		tree.SampleCount(), dim.Len(),
		float64(dim.Len())/float64(tree.SampleCount()),
		report.Bytes(int64(tree.MetadataBytes())))
}
