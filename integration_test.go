package lowcomm3d

// End-to-end integration scenarios combining subsystems: distributed
// convolution + serialization + reconstruction, and the full MASSIF
// workflow from microstructure to checkpointed solution.

import (
	"bytes"
	"math"
	"testing"

	"lowcomm3d/internal/cluster"
	"lowcomm3d/internal/conv"
	"lowcomm3d/internal/fftx"
	"lowcomm3d/internal/green"
	"lowcomm3d/internal/grid"
	"lowcomm3d/internal/massif"
	"lowcomm3d/internal/sample"
)

// TestIntegrationConvolutionPaths: every convolution path in the library —
// dense complex, dense r2c, distributed slab, distributed pencil, fftx
// declarative — computes the same answer for the same input, and the
// low-communication paths (serial decomposed, distributed low-comm)
// approximate it within the sampling tolerance.
func TestIntegrationConvolutionPaths(t *testing.T) {
	n, k := 32, 8
	d := grid.Cube(n)
	f := grid.NewField(d)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				dx, dy, dz := float64(x-12), float64(y-20), float64(z-8)
				f.Set(x, y, z, math.Exp(-(dx*dx+dy*dy+dz*dz)/20))
			}
		}
	}
	kernel := green.Gaussian{Sigma: 2}

	exact, err := conv.Baseline(f, kernel, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Exact paths must agree to round-off.
	r2c, err := conv.BaselineReal(f, kernel, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := grid.RelL2(r2c, exact); r > 1e-12 {
		t.Errorf("r2c path differs by %g", r)
	}
	cSlab, err := cluster.New(4, cluster.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	slab, err := cluster.DistFFTConvolve(cSlab, f, kernel)
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := grid.RelL2(slab, exact); r > 1e-11 {
		t.Errorf("slab path differs by %g", r)
	}
	cPencil, err := cluster.New(4, cluster.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	pencil, err := cluster.PencilFFTConvolve(cPencil, f, kernel)
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := grid.RelL2(pencil, exact); r > 1e-11 {
		t.Errorf("pencil path differs by %g", r)
	}
	// Approximate paths within sampling tolerance.
	dc := conv.Decomposed{Kernel: kernel, SubSize: k, FarRate: 8, Cfg: conv.Config{Pruned: true}}
	approx, _, err := dc.Run(f)
	if err != nil {
		t.Fatal(err)
	}
	rSerial, _ := grid.RelL2(approx, exact)
	if rSerial > 0.05 {
		t.Errorf("decomposed error %g", rSerial)
	}
	cLow, err := cluster.New(4, cluster.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	low, err := cluster.LowCommConvolve(cLow, f, kernel, k, 8, conv.Config{Pruned: true})
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := grid.RelL2(low.Field, approx); r > 1e-11 {
		t.Errorf("distributed low-comm differs from serial decomposed by %g", r)
	}
}

// TestIntegrationCompressShipReconstruct: convolve locally, serialize the
// compressed result, ship it through a byte stream, reconstruct remotely,
// and verify against the dense baseline plus the Taylor bound.
func TestIntegrationCompressShipReconstruct(t *testing.T) {
	n, k := 64, 16
	dim := grid.Cube(n)
	sub := grid.CubeAt(grid.Point{24, 24, 24}, k)
	kernel := green.Gaussian{Sigma: 2}
	tree, err := sample.DefaultPolicy(sub, 16).Tree(dim)
	if err != nil {
		t.Fatal(err)
	}
	local, err := conv.NewLocal(dim, sub, tree, conv.KernelPointwise(dim, kernel),
		conv.Config{Pruned: true})
	if err != nil {
		t.Fatal(err)
	}
	subField := grid.NewField(grid.Cube(k))
	for z := 0; z < k; z++ {
		for y := 0; y < k; y++ {
			for x := 0; x < k; x++ {
				dx, dy, dz := float64(x-k/2), float64(y-k/2), float64(z-k/2)
				subField.Set(x, y, z, math.Exp(-(dx*dx+dy*dy+dz*dz)/10))
			}
		}
	}
	res, _, err := local.Run(subField)
	if err != nil {
		t.Fatal(err)
	}
	// Serialize → deserialize (the "ship to another node" step).
	var buf bytes.Buffer
	if _, err := res.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	remote, err := sample.ReadCompressed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := remote.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	want, err := conv.BaselineSubdomain(dim, sub, subField, kernel, 0)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := grid.RelL2(dense, want)
	if rel > 0.03 {
		t.Errorf("shipped result error %g > 3%%", rel)
	}
	// The a-posteriori Taylor certificate must hold on the exact result.
	if _, _, err := remote.VerifyBound(want); err != nil {
		t.Errorf("Taylor bound violated: %v", err)
	}
}

// TestIntegrationMassifWorkflow: microstructure → accelerated solve →
// compress + checkpoint the strain → reload → compare against a
// distributed low-comm solve of the same problem.
func TestIntegrationMassifWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second workflow; skipped in -short")
	}
	n := 32
	l1, m1 := green.LameFromENu(200, 0.3)
	l2, m2 := green.LameFromENu(100, 0.3)
	micro, err := massif.NewMicrostructure(grid.Cube(n),
		massif.Phase{Lambda: l1, Mu: m1}, massif.Phase{Lambda: l2, Mu: m2})
	if err != nil {
		t.Fatal(err)
	}
	if err := micro.SetVoronoi(5, 3); err != nil {
		t.Fatal(err)
	}
	E := grid.SymTensor{0.01, 0, 0, 0, 0, 0}
	acc, err := massif.SolveAccelerated(micro, E, massif.Options{Tol: 1e-7, MaxIter: 200})
	if err != nil {
		t.Fatal(err)
	}
	if !acc.Converged {
		t.Fatal("accelerated solve did not converge")
	}
	cl, err := cluster.New(4, cluster.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	low, err := massif.SolveLowCommDistributed(cl, micro, E, massif.LowCommOptions{
		Options: massif.Options{Tol: 1e-3, MaxIter: 30},
		SubSize: 16, FarRate: 8, Pruned: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	refS := acc.MeanStress()[grid.VXX]
	lowS := low.MeanStress()[grid.VXX]
	if rel := math.Abs(lowS-refS) / refS; rel > 0.05 {
		t.Errorf("distributed low-comm mean stress off by %g", rel)
	}
	// Checkpoint one strain component through the binary format.
	tree, err := sample.Uniform{Rate: 2, CellSize: 8}.Tree(micro.Dim)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := sample.Compress(acc.Strain.Comp[grid.VXX], tree)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := comp.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := sample.ReadCompressed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := back.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := grid.RelL2(rec, acc.Strain.Comp[grid.VXX])
	if rel > 0.1 {
		t.Errorf("checkpoint reconstruction error %g", rel)
	}
}

// TestIntegrationFFTXBackends: the fftx specification executed through
// both backends inside a fresh environment each time.
func TestIntegrationFFTXBackends(t *testing.T) {
	n, k := 16, 8
	dim := grid.Cube(n)
	box := grid.CubeAt(grid.Point{8, 8, 0}, k)
	kernel := green.Yukawa{Kappa: 0.7}
	tree, err := sample.DefaultPolicy(box, 8).Tree(dim)
	if err != nil {
		t.Fatal(err)
	}
	decl, err := fftx.MassifConvolutionPlan(dim, box, tree, kernel, 0)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := fftx.MassifConvolutionPlanStreaming(dim, box, tree, kernel, conv.Config{Pruned: true})
	if err != nil {
		t.Fatal(err)
	}
	cube := grid.NewField(grid.Cube(k))
	cube.Set(4, 4, 4, 1)
	outs := make([]*grid.Field, 2)
	for i, p := range []*fftx.Plan{decl, stream} {
		env := fftx.Env{"small_cube": cube}
		if err := p.Execute(env); err != nil {
			t.Fatal(err)
		}
		out, err := fftx.Get[*grid.Field](env, "out")
		if err != nil {
			t.Fatal(err)
		}
		outs[i] = out
	}
	if r, _ := grid.RelL2(outs[1], outs[0]); r > 1e-10 {
		t.Errorf("fftx backends diverge by %g", r)
	}
}
